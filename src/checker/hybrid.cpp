#include "src/checker/hybrid.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "src/obs/trace.hpp"

namespace satproof::checker {

namespace {

class HybridChecker {
 public:
  HybridChecker(const Formula& f, trace::TraceReader& reader,
                const HybridOptions& options)
      : formula_(&f),
        reader_(&reader),
        level0_(reader.num_vars()),
        counts_(make_use_count_store(options.use_counts)),
        store_(options.recycle_arena),
        observer_(options.observer) {}

  CheckResult run() {
    CheckResult result;
    try {
      check_header(*formula_, reader_->num_vars(), reader_->num_original());
      {
        obs::Span span("parse");
        scan_structure();
      }
      if (!final_id_.has_value()) {
        throw CheckFailure(
            "trace has no final conflicting clause; it does not claim "
            "unsatisfiability");
      }
      {
        obs::Span span("index");
        mark_reachable_and_count();
      }
      mem_.add(counts_->memory_bytes());
      mem_.add(level0_.size() * 16);
      chain_.reserve_vars(reader_->num_vars());
      {
        obs::Span span("replay");
        replay_reachable();
      }
      const ClauseFetcher fetch = [this](ClauseId id) {
        return fetch_clause(id);
      };
      SortedClause remaining;
      {
        obs::Span span("final_derivation");
        std::vector<ClauseId> final_antecedents;
        remaining = derive_final_clause(
            *final_id_, fetch, level0_, stats_,
            observer_ != nullptr ? &final_antecedents : nullptr);
        if (observer_ != nullptr && remaining.empty()) {
          observer_->on_final(*final_id_, final_antecedents);
        }
      }
      if (!remaining.empty()) {
        validate_assumption_clause(remaining, level0_);
        result.failed_assumption_clause = std::move(remaining);
      }
      result.ok = true;
    } catch (const CheckFailure& e) {
      result.ok = false;
      result.error = e.what();
    } catch (const std::runtime_error& e) {
      result.ok = false;
      result.error = std::string("trace error: ") + e.what();
    }
    // The DAG structure/counts footprint only grows and the clause window
    // lives entirely in the arena, so the two peaks compose additively.
    const util::ClauseArena& arena = store_.arena();
    stats_.peak_mem_bytes = mem_.peak_bytes() + arena.peak_bytes();
    stats_.arena_allocated_bytes = arena.allocated_bytes();
    stats_.arena_recycled_bytes = arena.recycled_bytes();
    stats_.arena_peak_bytes = arena.peak_bytes();
    result.stats = stats_;
    return result;
  }

 private:
  [[nodiscard]] ClauseId num_original() const {
    return reader_->num_original();
  }

  [[nodiscard]] std::uint64_t ordinal(ClauseId id) const {
    return id - num_original();
  }

  /// Index of a learned clause in the structure arrays, by ID (IDs are
  /// strictly increasing, so binary search applies).
  [[nodiscard]] std::size_t index_of(ClauseId id) const {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) return ~std::size_t{0};
    return static_cast<std::size_t>(it - ids_.begin());
  }

  /// Pass 1: single streaming read keeping only the DAG structure —
  /// derivation IDs and source lists, no literals.
  void scan_structure() {
    reader_->rewind();
    trace::Record rec;
    bool ended = false;
    std::optional<ClauseId> last_id;
    while (!ended && reader_->next(rec)) {
      switch (rec.kind) {
        case trace::RecordKind::Derivation: {
          if (rec.id < num_original()) {
            throw CheckFailure("derivation " + std::to_string(rec.id) +
                               " reuses an original clause ID");
          }
          if (last_id.has_value() && rec.id <= *last_id) {
            throw CheckFailure(
                "derivation IDs must be strictly increasing (clause " +
                std::to_string(rec.id) + " after " +
                std::to_string(*last_id) + ")");
          }
          if (rec.sources.size() < 2) {
            throw CheckFailure("derivation " + std::to_string(rec.id) +
                               " has fewer than two resolve sources");
          }
          for (const ClauseId s : rec.sources) {
            if (s >= rec.id) {
              throw CheckFailure(
                  "derivation " + std::to_string(rec.id) +
                  " references source " + std::to_string(s) +
                  " that does not precede it");
            }
          }
          // Sources precede rec.id, so bounding the ID makes the 32-bit
          // narrowing below lossless (same policy as DerivationIndex).
          if (rec.id > std::numeric_limits<std::uint32_t>::max()) {
            throw CheckFailure("trace too large: clause IDs exceed 2^32");
          }
          if (src_pool_.size() + rec.sources.size() >
              std::numeric_limits<std::uint32_t>::max()) {
            throw CheckFailure(
                "trace too large: derivation source pool exceeds 2^32");
          }
          last_id = rec.id;
          ids_.push_back(rec.id);
          src_offset_.push_back(static_cast<std::uint32_t>(src_pool_.size()));
          for (const ClauseId s : rec.sources) {
            src_pool_.push_back(static_cast<std::uint32_t>(s));
          }
          ++stats_.total_derivations;
          break;
        }
        case trace::RecordKind::FinalConflict:
          if (final_id_.has_value()) {
            throw CheckFailure(
                "trace has more than one final conflict record");
          }
          final_id_ = rec.id;
          break;
        case trace::RecordKind::Level0:
          level0_.add(rec.var, rec.value, rec.antecedent);
          break;
        case trace::RecordKind::Assumption:
          level0_.add_assumption(rec.var, rec.value);
          break;
        case trace::RecordKind::End:
          ended = true;
          break;
      }
    }
    if (!ended) throw CheckFailure("trace truncated: missing end record");
    src_offset_.push_back(static_cast<std::uint32_t>(src_pool_.size()));
    mem_.add(ids_.size() * sizeof(ClauseId) +
             src_offset_.size() * sizeof(std::uint32_t) +
             src_pool_.size() * sizeof(std::uint32_t));
  }

  [[nodiscard]] std::span<const std::uint32_t> sources_of(
      std::size_t index) const {
    return {src_pool_.data() + src_offset_[index],
            src_offset_[index + 1] - src_offset_[index]};
  }

  /// Backward reachability from the final conflict and the level-0
  /// antecedents, then use counts restricted to reachable consumers.
  void mark_reachable_and_count() {
    reachable_.assign(ids_.size(), false);
    mem_.add(ids_.size() / 8 + 16);

    const auto seed = [this](ClauseId id, const std::string& what) {
      if (id < num_original()) return;
      const std::size_t idx = index_of(id);
      if (idx == ~std::size_t{0}) {
        throw CheckFailure(what + " " + std::to_string(id) +
                           " is never derived in the trace");
      }
      reachable_[idx] = true;
    };
    seed(*final_id_, "final conflicting clause");
    for (Var v = 0; v < reader_->num_vars(); ++v) {
      if (level0_.implied(v)) {
        seed(level0_.antecedent(v), "level-0 antecedent");
      }
    }
    // Sources precede their consumers, so one backward sweep settles
    // reachability.
    for (std::size_t i = ids_.size(); i-- > 0;) {
      if (!reachable_[i]) continue;
      for (const ClauseId s : sources_of(i)) {
        if (s < num_original()) continue;
        const std::size_t idx = index_of(s);
        // Guaranteed to exist: IDs are dense in ids_ only if derived; a
        // missing source is a dangling reference.
        if (idx == ~std::size_t{0}) {
          throw CheckFailure("clause " + std::to_string(s) +
                             " is referenced but never derived in the trace");
        }
        reachable_[idx] = true;
      }
    }

    const std::uint64_t slots =
        ids_.empty() ? 0 : ordinal(ids_.back()) + 1;
    counts_->resize(slots);
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      if (!reachable_[i]) continue;
      for (const ClauseId s : sources_of(i)) {
        if (s >= num_original()) counts_->increment(ordinal(s));
      }
    }
    // Pin what the final derivation needs.
    if (*final_id_ >= num_original()) counts_->increment(ordinal(*final_id_));
    for (Var v = 0; v < reader_->num_vars(); ++v) {
      if (level0_.implied(v) && level0_.antecedent(v) >= num_original()) {
        counts_->increment(ordinal(level0_.antecedent(v)));
      }
    }
  }

  /// Builds the reachable clauses in generation order, releasing each as
  /// soon as its reachable uses are exhausted. Streams over the in-memory
  /// structure — no second trace read is needed.
  void replay_reachable() {
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      if (!reachable_[i]) continue;
      const auto sources = sources_of(i);
      chain_.start(fetch_clause(sources[0]));
      for (std::size_t k = 1; k < sources.size(); ++k) {
        const ResolveResult r = chain_.step(fetch_clause(sources[k]));
        ++stats_.resolutions;
        if (r.status != ResolveStatus::Ok) {
          throw CheckFailure(
              "derivation of clause " + std::to_string(ids_[i]) +
              ": resolving with source " + std::to_string(sources[k]) +
              " (step " + std::to_string(k) + ") failed: " +
              (r.status == ResolveStatus::NoClash
                   ? "no clashing variable"
                   : "more than one clashing variable"));
        }
      }
      ++stats_.clauses_built;
      // Announce before the decrements below so a certificate's deletion
      // records always trail the addition that may trigger them.
      if (observer_ != nullptr) {
        observer_->on_derived(ids_[i], chain_.lits(), sources);
      }
      // One batched decrement per chain; exhausted ordinals come back in
      // decrement order, so release order — and hence the free-list state
      // and recycled-bytes counter — matches the per-antecedent loop.
      ord_scratch_.clear();
      for (const ClauseId s : sources) {
        if (s >= num_original()) ord_scratch_.push_back(ordinal(s));
      }
      exhausted_scratch_.clear();
      counts_->decrement_batch(ord_scratch_, exhausted_scratch_);
      for (const std::uint64_t ord : exhausted_scratch_) {
        release(static_cast<ClauseId>(ord) + num_original());
      }
      if (counts_->get(ordinal(ids_[i])) > 0) {
        // Stored unsorted, like the other replay backends: resolution is
        // set-based and nothing downstream reads stored literal order.
        store_.put(ids_[i], chain_.lits());
      }
    }
  }

  ClauseView fetch_clause(ClauseId id) {
    if (id < num_original()) {
      // Canonicalize in place so the scratch buffer's capacity is reused
      // across original-clause fetches.
      const ClauseView raw = formula_->clause(id);
      scratch_.assign(raw.begin(), raw.end());
      std::sort(scratch_.begin(), scratch_.end());
      scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                     scratch_.end());
      if (is_tautology(scratch_)) {
        throw CheckFailure(
            "original clause " + std::to_string(id) +
            " is tautological and cannot be a resolution source");
      }
      return scratch_;
    }
    if (!store_.contains(id)) {
      throw CheckFailure(
          "clause " + std::to_string(id) +
          " is not available: it was never derived, or its use count was "
          "exhausted earlier than the trace implies");
    }
    return store_.view(id);
  }

  void release(ClauseId id) {
    if (store_.contains(id)) {
      store_.release(id);
      if (observer_ != nullptr) observer_->on_released(id);
    }
  }

  const Formula* formula_;
  trace::TraceReader* reader_;
  Level0Table level0_;
  std::unique_ptr<UseCountStore> counts_;
  std::optional<ClauseId> final_id_;

  // DAG structure (pass 1). Source IDs and offsets are narrowed to 32
  // bits (IDs are bounded at scan time, and the pool is capped at 2^32
  // entries): the CSR is most of this checker's resident footprint.
  std::vector<ClauseId> ids_;
  std::vector<std::uint32_t> src_offset_;
  std::vector<std::uint32_t> src_pool_;
  std::vector<bool> reachable_;

  ClauseStore store_;
  SortedClause scratch_;
  std::vector<std::uint64_t> ord_scratch_;        ///< per-chain ordinals
  std::vector<std::uint64_t> exhausted_scratch_;  ///< zeroed this chain
  ChainResolver chain_;
  util::MemTracker mem_;
  CheckStats stats_;
  CertObserver* observer_ = nullptr;
};

}  // namespace

CheckResult check_hybrid(const Formula& f, trace::TraceReader& reader,
                         const HybridOptions& options) {
  HybridChecker checker(f, reader, options);
  return checker.run();
}

}  // namespace satproof::checker
