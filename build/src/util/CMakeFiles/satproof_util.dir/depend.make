# Empty dependencies file for satproof_util.
# This may be replaced when dependencies are built.
