#include "src/proof/export.hpp"

#include <ostream>
#include <unordered_set>

namespace satproof::proof {

namespace {

void write_clause_label(std::ostream& out, const ProofDag::Node& node) {
  if (node.lits.empty()) {
    out << "[]";
    return;
  }
  bool first = true;
  for (const Lit lit : node.lits) {
    if (!first) out << " ";
    first = false;
    out << lit.to_dimacs();
  }
}

}  // namespace

void write_dot(std::ostream& out, const ProofDag& dag,
               const DotOptions& options) {
  // Select the nodes closest to the root: walk the topological order
  // backwards (root last) until the budget is exhausted.
  std::unordered_set<ClauseId> selected;
  for (std::size_t i = dag.nodes.size();
       i-- > 0 && selected.size() < options.max_nodes;) {
    selected.insert(dag.nodes[i].id);
  }

  out << "digraph proof {\n"
      << "  rankdir=BT;\n"
      << "  node [fontsize=10];\n";
  for (const auto& node : dag.nodes) {
    if (!selected.contains(node.id)) continue;
    out << "  n" << node.id << " [";
    if (node.id == dag.root_id) {
      out << "shape=doublecircle, label=\"[] (empty)\"";
    } else if (node.sources.empty()) {
      out << "shape=box, label=\"#" << node.id;
      if (options.show_literals) {
        out << "\\n";
        write_clause_label(out, node);
      }
      out << "\"";
    } else {
      out << "shape=ellipse, label=\"#" << node.id;
      if (options.show_literals) {
        out << "\\n";
        write_clause_label(out, node);
      }
      out << "\"";
    }
    out << "];\n";
  }
  for (const auto& node : dag.nodes) {
    if (node.sources.empty() || !selected.contains(node.id)) continue;
    for (const ClauseId s : node.sources) {
      if (!selected.contains(s)) continue;
      out << "  n" << s << " -> n" << node.id << ";\n";
    }
  }
  out << "}\n";
}

void write_tracecheck(std::ostream& out, const ProofDag& dag) {
  for (const auto& node : dag.nodes) {
    out << node.id + 1;
    out << ' ';
    for (const Lit lit : node.lits) out << lit.to_dimacs() << ' ';
    out << "0 ";
    for (const ClauseId s : node.sources) out << s + 1 << ' ';
    out << "0\n";
  }
}

}  // namespace satproof::proof
