#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "src/service/run_check.hpp"
#include "src/util/temp_file.hpp"

namespace satproof::service {

/// One admitted proof-checking job. The CNF and trace were streamed to
/// temp files during upload; the request owns them, so their bytes live
/// exactly as long as the job does.
struct JobRequest {
  std::uint64_t id = 0;
  Backend backend = Backend::kDf;
  unsigned jobs = 0;             ///< parallel-backend worker count
  std::uint32_t timeout_ms = 0;  ///< wall-clock budget from enqueue; 0 = none
  util::TempFile cnf_file;
  util::TempFile trace_file;
  std::chrono::steady_clock::time_point enqueued_at;
  /// Upload duration (SUBMIT to SUBMIT_END) on the connection thread,
  /// carried along so the job's span tree can include the ingest stage.
  std::uint64_t ingest_us = 0;
};

/// Completion rendezvous between the worker that runs a job and the
/// connection thread that (optionally) waits for its result.
struct JobTicket {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool timed_out = false;
  JobOutcome outcome;

  /// Worker side: publish the outcome and wake any waiter.
  void complete(JobOutcome o, bool was_timeout);
  /// Waiter side: block until complete() ran.
  void wait();
};

/// Bounded FIFO of admitted jobs — the backpressure point of the service.
///
/// Admission control lives here and nowhere else: try_enqueue refuses when
/// the queue holds `capacity` not-yet-started jobs (the caller answers the
/// client with a BUSY frame) or after close() (the caller answers
/// DRAINING). The thread pool's own queue stays effectively empty because
/// the scheduler submits exactly one pool task per admitted job.
class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  enum class EnqueueResult { kAccepted, kFull, kClosed };

  /// Admits a job. On kAccepted, `ticket_out` receives the completion
  /// ticket; on kFull/kClosed the request (and its temp files) is
  /// destroyed.
  EnqueueResult try_enqueue(JobRequest&& request,
                            std::shared_ptr<JobTicket>& ticket_out);

  /// Takes the oldest admitted job; nullopt when empty.
  std::optional<std::pair<JobRequest, std::shared_ptr<JobTicket>>> try_pop();

  /// Refuses all future enqueues (drain).
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  bool closed_ = false;
  std::deque<std::pair<JobRequest, std::shared_ptr<JobTicket>>> queue_;
};

}  // namespace satproof::service
