#include "src/trace/drup.hpp"

#include <ostream>

namespace satproof::trace {

namespace {

void append_i64(std::string& buf, std::int64_t v) {
  if (v < 0) {
    buf.push_back('-');
    v = -v;
  }
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) buf.push_back(tmp[--n]);
}

}  // namespace

void DrupWriter::write_lits(std::span<const Lit> lits) {
  for (const Lit lit : lits) {
    append_i64(buf_, lit.to_dimacs());
    buf_.push_back(' ');
  }
  buf_ += "0\n";
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
}

void DrupWriter::add_clause(std::span<const Lit> lits) {
  buf_.clear();
  write_lits(lits);
}

void DrupWriter::delete_clause(std::span<const Lit> lits) {
  buf_.clear();
  buf_ += "d ";
  write_lits(lits);
}

void DrupWriter::empty_clause() {
  buf_.clear();
  write_lits({});
  out_->flush();
}

}  // namespace satproof::trace
