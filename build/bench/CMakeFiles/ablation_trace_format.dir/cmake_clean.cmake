file(REMOVE_RECURSE
  "CMakeFiles/ablation_trace_format.dir/ablation_trace_format.cpp.o"
  "CMakeFiles/ablation_trace_format.dir/ablation_trace_format.cpp.o.d"
  "ablation_trace_format"
  "ablation_trace_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trace_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
