// Sequential vs wavefront-parallel proof checking on the bundled UNSAT
// suite: wall-clock for the depth-first checker and for the parallel
// checker at 1, 2 and 4 workers, plus the speedup of 4 workers over
// sequential depth-first. Checking — not solving — is the throughput
// bottleneck at scale, so this is the number the parallel backend exists
// to move. Every run also cross-checks that the parallel core is
// byte-identical to the depth-first core.
//
// Note: speedup tracks the machine. On a single-hardware-thread host the
// parallel rows measure pure scheduling overhead (expect ~1.0x or below);
// the wavefront structure only pays off with real cores to spread across.

#include <cstring>
#include <iostream>
#include <thread>

#include "src/checker/depth_first.hpp"
#include "src/checker/parallel.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace satproof;

  // --quick: the small suite, for CI smoke runs where the point is that
  // the harness works, not the absolute numbers.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::cerr << "usage: parallel_speedup [--quick]\n";
      return 2;
    }
  }

  util::Table table({"Instance", "Derivs", "Built", "DF (s)",
                     "Par j=1 (s)", "Par j=2 (s)", "Par j=4 (s)",
                     "Speedup j=4"});

  const encode::SuiteScale scale =
      quick ? encode::SuiteScale::Small : encode::SuiteScale::Standard;
  for (const auto& inst : encode::unsat_suite(scale)) {
    trace::MemoryTraceWriter writer;
    solver::Solver s;
    s.add_formula(inst.formula);
    s.set_trace_writer(&writer);
    if (s.solve() != solver::SolveResult::Unsatisfiable) {
      std::cerr << "FATAL: " << inst.name << " not UNSAT\n";
      return 1;
    }
    const trace::MemoryTrace t = writer.take();

    checker::CheckResult df;
    double df_secs = 0.0;
    {
      trace::MemoryTraceReader reader(t);
      util::Timer timer;
      df = checker::check_depth_first(inst.formula, reader);
      df_secs = timer.elapsed_seconds();
      if (!df.ok) {
        std::cerr << "FATAL: depth-first check failed on " << inst.name
                  << ": " << df.error << "\n";
        return 1;
      }
    }

    double par_secs[3] = {0.0, 0.0, 0.0};
    const unsigned jobs_grid[3] = {1, 2, 4};
    for (int j = 0; j < 3; ++j) {
      trace::MemoryTraceReader reader(t);
      checker::ParallelOptions opts;
      opts.jobs = jobs_grid[j];
      util::Timer timer;
      const checker::CheckResult par =
          checker::check_parallel(inst.formula, reader, opts);
      par_secs[j] = timer.elapsed_seconds();
      if (!par.ok) {
        std::cerr << "FATAL: parallel check failed on " << inst.name << ": "
                  << par.error << "\n";
        return 1;
      }
      if (par.core != df.core) {
        std::cerr << "FATAL: parallel core differs from depth-first on "
                  << inst.name << " at jobs=" << jobs_grid[j] << "\n";
        return 1;
      }
    }

    table.add_row({inst.name, std::to_string(df.stats.total_derivations),
                   std::to_string(df.stats.clauses_built),
                   util::format_double(df_secs, 3),
                   util::format_double(par_secs[0], 3),
                   util::format_double(par_secs[1], 3),
                   util::format_double(par_secs[2], 3),
                   util::format_double(
                       par_secs[2] > 0.0 ? df_secs / par_secs[2] : 0.0, 2)});
  }

  std::cout << "Parallel wavefront checking vs sequential depth-first\n"
            << "(hardware threads on this host: "
            << std::thread::hardware_concurrency() << ")\n\n"
            << table.to_string();
  return 0;
}
