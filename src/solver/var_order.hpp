#pragma once

#include <cstdint>
#include <vector>

#include "src/cnf/types.hpp"

namespace satproof::solver {

/// VSIDS variable order: a binary max-heap over activity scores.
///
/// Chaff's decision heuristic bumps the score of every variable involved in
/// a conflict and periodically decays all scores; decisions pick the free
/// variable with the highest score. Decay is implemented the
/// rescaling way (bump increment grows by 1/decay per conflict, scores
/// rescale near overflow), which is numerically identical to halving all
/// counters periodically but O(1) per conflict.
class VarOrder {
 public:
  /// Grows the structure to cover variables [0, num_vars).
  void grow_to(Var num_vars);

  /// Increases `v`'s activity and restores the heap property.
  void bump(Var v);

  /// Applies one conflict's worth of decay (increment scaling).
  void decay(double factor);

  /// Reinserts `v` (e.g. after it is unassigned on backtrack). No-op if
  /// already present.
  void insert(Var v);

  /// Removes and returns the variable with maximum activity. The heap must
  /// be non-empty.
  Var pop_max();

  /// True when no variable is queued.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// True when `v` is currently queued.
  [[nodiscard]] bool contains(Var v) const {
    return v < pos_.size() && pos_[v] != kNotInHeap;
  }

  /// Current activity of `v` (for tests and diagnostics).
  [[nodiscard]] double activity(Var v) const { return activity_[v]; }

 private:
  static constexpr std::uint32_t kNotInHeap = 0xffffffffu;

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  [[nodiscard]] bool less(Var a, Var b) const {
    return activity_[a] < activity_[b];
  }

  std::vector<double> activity_;
  std::vector<Var> heap_;
  std::vector<std::uint32_t> pos_;
  double inc_ = 1.0;
};

}  // namespace satproof::solver
