// Combinational equivalence checking with a validated proof — the EDA flow
// that motivates the paper (its c5315/c7225 rows are exactly this).
//
// Two structurally different 16-bit adders (ripple-carry vs carry-select)
// are mitered; UNSAT of the miter CNF proves equivalence, and the
// resolution checker makes that claim trustworthy. A deliberately broken
// third implementation shows the SAT side: the model is a concrete
// counterexample input.

#include <iostream>

#include "src/checker/breadth_first.hpp"
#include "src/circuit/miter.hpp"
#include "src/circuit/tseitin.hpp"
#include "src/circuit/words.hpp"
#include "src/cnf/model.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

namespace {

using namespace satproof;

std::uint64_t decode_word(const circuit::Word& w,
                          const circuit::TseitinResult& ts, const Model& m) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (m[ts.wire_var[w[i]]] == LBool::True) v |= std::uint64_t{1} << i;
  }
  return v;
}

}  // namespace

int main() {
  constexpr std::size_t kWidth = 16;

  // ---- the equivalent pair -------------------------------------------------
  {
    circuit::Netlist n;
    const circuit::Word a = circuit::input_word(n, kWidth);
    const circuit::Word b = circuit::input_word(n, kWidth);
    const auto ripple = circuit::ripple_carry_adder(n, a, b);
    const auto select = circuit::carry_select_adder(n, a, b);
    const circuit::Wire miter =
        circuit::build_miter(n, ripple.sum, select.sum);
    const Formula f = circuit::miter_to_cnf(n, miter);
    std::cout << "Miter(ripple-carry, carry-select), " << kWidth
              << "-bit: " << f.num_vars() << " vars, " << f.num_clauses()
              << " clauses\n";

    solver::Solver s;
    s.add_formula(f);
    trace::MemoryTraceWriter w;
    s.set_trace_writer(&w);
    if (s.solve() != solver::SolveResult::Unsatisfiable) {
      std::cout << "UNEXPECTED: adders differ!\n";
      return 1;
    }
    const trace::MemoryTrace t = w.take();
    trace::MemoryTraceReader reader(t);
    const checker::CheckResult check = checker::check_breadth_first(f, reader);
    if (!check.ok) {
      std::cout << "proof check FAILED: " << check.error << "\n";
      return 1;
    }
    std::cout << "  equivalent: UNSAT, proof validated ("
              << check.stats.resolutions << " resolutions replayed)\n\n";
  }

  // ---- the buggy pair ------------------------------------------------------
  {
    circuit::Netlist n;
    const circuit::Word a = circuit::input_word(n, kWidth);
    const circuit::Word b = circuit::input_word(n, kWidth);
    const auto ripple = circuit::ripple_carry_adder(n, a, b);
    // "Optimized" adder with a wrong gate: bit 7 uses OR instead of XOR.
    auto broken = circuit::ripple_carry_adder(n, a, b).sum;
    broken[7] = n.make_or(a[7], b[7]);
    const circuit::Wire miter = circuit::build_miter(n, ripple.sum, broken);
    const circuit::Wire asserted[] = {miter};
    const circuit::TseitinResult ts = circuit::tseitin(n, asserted);

    solver::Solver s;
    s.add_formula(ts.formula);
    std::cout << "Miter(ripple-carry, buggy adder):\n";
    if (s.solve() != solver::SolveResult::Satisfiable) {
      std::cout << "UNEXPECTED: bug not found!\n";
      return 1;
    }
    const std::uint64_t av = decode_word(a, ts, s.model());
    const std::uint64_t bv = decode_word(b, ts, s.model());
    std::cout << "  NOT equivalent; counterexample: a=" << av << " b=" << bv
              << " (correct sum " << ((av + bv) & 0xffff) << ")\n";
  }
  return 0;
}
