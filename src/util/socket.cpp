#include "src/util/socket.hpp"

#include <stdexcept>

#if !defined(_WIN32)

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace satproof::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

bool Socket::send_all(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t k = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

std::ptrdiff_t Socket::recv_some(void* data, std::size_t n) noexcept {
  for (;;) {
    const ssize_t k = ::recv(fd_, data, n, 0);
    if (k < 0 && errno == EINTR) continue;
    return k;
  }
}

std::size_t Socket::recv_exact(void* data, std::size_t n) noexcept {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const std::ptrdiff_t k = recv_some(p + got, n - got);
    if (k <= 0) break;
    got += static_cast<std::size_t>(k);
  }
  return got;
}

void Socket::set_recv_timeout_ms(unsigned ms) noexcept {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool Socket::set_nonblocking() noexcept {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::ptrdiff_t Socket::recv_nonblocking(void* data, std::size_t n) noexcept {
  for (;;) {
    const ssize_t k = ::recv(fd_, data, n, 0);
    if (k >= 0) return k;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return kIoError;
  }
}

std::ptrdiff_t Socket::send_nonblocking(const void* data,
                                        std::size_t n) noexcept {
  for (;;) {
    const ssize_t k = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (k >= 0) return k;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return kIoError;
  }
}

Socket listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // replace a stale socket file from a dead server
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(s.fd(), backlog) != 0) throw_errno("listen(" + path + ")");
  return s;
}

Socket listen_tcp_localhost(std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(s.fd(), backlog) != 0) throw_errno("listen(tcp)");
  return s;
}

std::uint16_t local_port(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Socket accept_connection(Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Socket();
  }
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(AF_UNIX)");
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect(" + path + ")");
  }
  return s;
}

Socket connect_tcp_localhost(std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return s;
}

unsigned poll_readable(const int (&fds)[3], int timeout_ms) {
  pollfd pfds[3];
  int slot_of[3];
  nfds_t n = 0;
  for (int i = 0; i < 3; ++i) {
    if (fds[i] < 0) continue;
    pfds[n].fd = fds[i];
    pfds[n].events = POLLIN;
    pfds[n].revents = 0;
    slot_of[n] = i;
    ++n;
  }
  if (n == 0) return 0;
  for (;;) {
    const int r = ::poll(pfds, n, timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return 0;
    break;
  }
  unsigned mask = 0;
  for (nfds_t i = 0; i < n; ++i) {
    if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      mask |= 1u << slot_of[i];
    }
  }
  return mask;
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw_errno("pipe");
  read_fd = fds[0];
  write_fd = fds[1];
  // Non-blocking on both ends: notify() from a signal handler must never
  // block, and drain() loops until the pipe is empty.
  ::fcntl(write_fd, F_SETFL, O_NONBLOCK);
  ::fcntl(read_fd, F_SETFL, O_NONBLOCK);
}

WakePipe::~WakePipe() {
  if (read_fd >= 0) ::close(read_fd);
  if (write_fd >= 0) ::close(write_fd);
}

void WakePipe::notify() noexcept {
  const char byte = 'x';
  [[maybe_unused]] const ssize_t r = ::write(write_fd, &byte, 1);
}

void WakePipe::drain() noexcept {
  char buf[64];
  while (::read(read_fd, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace satproof::util

#else  // _WIN32 — sockets unavailable; keep the interface compiling.

namespace satproof::util {

namespace {
[[noreturn]] void unsupported() {
  throw std::runtime_error("sockets are not supported on this platform");
}
}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}
void Socket::close() noexcept { fd_ = -1; }
void Socket::shutdown_both() noexcept {}
void Socket::shutdown_read() noexcept {}
bool Socket::send_all(const void*, std::size_t) noexcept { return false; }
std::ptrdiff_t Socket::recv_some(void*, std::size_t) noexcept { return -1; }
std::size_t Socket::recv_exact(void*, std::size_t) noexcept { return 0; }
void Socket::set_recv_timeout_ms(unsigned) noexcept {}
bool Socket::set_nonblocking() noexcept { return false; }
std::ptrdiff_t Socket::recv_nonblocking(void*, std::size_t) noexcept {
  return kIoError;
}
std::ptrdiff_t Socket::send_nonblocking(const void*, std::size_t) noexcept {
  return kIoError;
}

Socket listen_unix(const std::string&, int) { unsupported(); }
Socket listen_tcp_localhost(std::uint16_t, int) { unsupported(); }
std::uint16_t local_port(const Socket&) { unsupported(); }
Socket accept_connection(Socket&) { return Socket(); }
Socket connect_unix(const std::string&) { unsupported(); }
Socket connect_tcp_localhost(std::uint16_t) { unsupported(); }
unsigned poll_readable(const int (&)[3], int) { return 0; }
WakePipe::WakePipe() { unsupported(); }
WakePipe::~WakePipe() = default;
void WakePipe::notify() noexcept {}
void WakePipe::drain() noexcept {}

}  // namespace satproof::util

#endif
