// Reproduces Table 3 of the paper: unsatisfiable-core extraction by
// iterated depth-first checking.
//
// Paper columns: Benchmark | Original {Num Cls, Num Vars} | First Iteration
// {Num Cls, Num Vars} | 30 Iterations (or fixed point) {Num Cls, Num Vars,
// Iteration}.
//
// Expected shape (paper): the first proof uses only part of the formula;
// iterating shrinks the core further until (often) a fixed point where
// every clause is needed; planning and routing instances have cores much
// smaller than the original formula. Like the paper (which omits its
// hardest rows here), instances flagged core_iteration = false are skipped.

#include <iostream>

#include "src/core/unsat_core.hpp"
#include "src/encode/suite.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace satproof;

  util::Table table({"Instance", "Orig Cls", "Orig Vars", "1st-Iter Cls",
                     "1st-Iter Vars", "Final Cls", "Final Vars", "Iters",
                     "Fixed Point"});

  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Standard)) {
    if (!inst.core_iteration) continue;
    const core::CoreIteration it = core::iterate_core(inst.formula, 30);
    if (!it.ok) {
      std::cerr << "FATAL: core iteration failed on " << inst.name << ": "
                << it.error << "\n";
      return 1;
    }
    const auto& orig = it.steps.front();
    const auto& first = it.steps.size() > 1 ? it.steps[1] : it.steps.front();
    const auto& last = it.steps.back();
    table.add_row({inst.name, std::to_string(orig.num_clauses),
                   std::to_string(orig.num_vars),
                   std::to_string(first.num_clauses),
                   std::to_string(first.num_vars),
                   std::to_string(last.num_clauses),
                   std::to_string(last.num_vars),
                   std::to_string(it.iterations),
                   it.fixed_point ? "yes" : "no"});
  }

  std::cout << "Table 3: unsatisfiable cores by iterated depth-first "
               "checking (30 iterations max)\n"
            << "(paper: cores shrink across iterations; planning/routing "
               "cores << original)\n\n"
            << table.to_string();
  return 0;
}
