#include "src/checker/breadth_first.hpp"

#include <algorithm>
#include <optional>

#include "src/obs/trace.hpp"

namespace satproof::checker {

namespace {

class BreadthFirstChecker {
 public:
  BreadthFirstChecker(const Formula& f, trace::TraceReader& reader,
                      const BreadthFirstOptions& options)
      : formula_(&f),
        reader_(&reader),
        options_(options),
        level0_(reader.num_vars()),
        counts_(make_use_count_store(options.use_counts)),
        store_(options.recycle_arena) {}

  CheckResult run() {
    CheckResult result;
    try {
      check_header(*formula_, reader_->num_vars(), reader_->num_original());
      {
        obs::Span span("parse");
        scan_pass();
      }
      {
        obs::Span span("use_count");
        counting_pass();
      }
      if (!final_id_.has_value()) {
        throw CheckFailure(
            "trace has no final conflicting clause; it does not claim "
            "unsatisfiability");
      }
      mem_.add(counts_->memory_bytes());
      mem_.add(level0_.size() * 16);
      chain_.reserve_vars(reader_->num_vars());
      {
        obs::Span span("replay");
        resolution_pass();
      }
      const ClauseFetcher fetch = [this](ClauseId id) {
        return fetch_clause(id);
      };
      SortedClause remaining;
      {
        obs::Span span("final_derivation");
        remaining = derive_final_clause(*final_id_, fetch, level0_, stats_);
      }
      if (!remaining.empty()) {
        validate_assumption_clause(remaining, level0_);
        result.failed_assumption_clause = std::move(remaining);
      }
      result.ok = true;
    } catch (const CheckFailure& e) {
      result.ok = false;
      result.error = e.what();
    } catch (const std::runtime_error& e) {
      result.ok = false;
      result.error = std::string("trace error: ") + e.what();
    }
    // The counts/level-0 footprint only grows and the clause window lives
    // entirely in the arena, so the two peaks compose additively.
    const util::ClauseArena& arena = store_.arena();
    stats_.peak_mem_bytes = mem_.peak_bytes() + arena.peak_bytes();
    stats_.arena_allocated_bytes = arena.allocated_bytes();
    stats_.arena_recycled_bytes = arena.recycled_bytes();
    stats_.arena_peak_bytes = arena.peak_bytes();
    result.stats = stats_;
    return result;
  }

 private:
  [[nodiscard]] ClauseId num_original() const {
    return reader_->num_original();
  }

  [[nodiscard]] std::uint64_t ordinal(ClauseId id) const {
    return id - num_original();
  }

  /// First traversal: validates record structure, sizes the use-count
  /// store, collects the final conflict and the level-0 table, and pins
  /// (pre-increments) the clauses the final derivation may need.
  void scan_pass() {
    reader_->rewind();
    trace::Record rec;
    bool ended = false;
    std::optional<ClauseId> last_id;
    while (!ended && reader_->next(rec)) {
      switch (rec.kind) {
        case trace::RecordKind::Derivation: {
          if (rec.id < num_original()) {
            throw CheckFailure("derivation " + std::to_string(rec.id) +
                               " reuses an original clause ID");
          }
          if (last_id.has_value() && rec.id <= *last_id) {
            throw CheckFailure(
                "derivation IDs must be strictly increasing (clause " +
                std::to_string(rec.id) + " after " + std::to_string(*last_id) +
                ")");
          }
          if (rec.sources.size() < 2) {
            throw CheckFailure("derivation " + std::to_string(rec.id) +
                               " has fewer than two resolve sources");
          }
          for (const ClauseId s : rec.sources) {
            if (s >= rec.id) {
              throw CheckFailure(
                  "derivation " + std::to_string(rec.id) +
                  " references source " + std::to_string(s) +
                  " that does not precede it");
            }
          }
          last_id = rec.id;
          ++stats_.total_derivations;
          break;
        }
        case trace::RecordKind::FinalConflict:
          if (final_id_.has_value()) {
            throw CheckFailure("trace has more than one final conflict record");
          }
          final_id_ = rec.id;
          break;
        case trace::RecordKind::Level0:
          level0_.add(rec.var, rec.value, rec.antecedent);
          break;
        case trace::RecordKind::Assumption:
          level0_.add_assumption(rec.var, rec.value);
          break;
        case trace::RecordKind::End:
          ended = true;
          break;
      }
    }
    if (!ended) throw CheckFailure("trace truncated: missing end record");

    num_learned_slots_ = last_id.has_value() ? ordinal(*last_id) + 1 : 0;
    counts_->resize(num_learned_slots_);
  }

  /// Second traversal(s): count how often each learned clause is used as a
  /// resolve source, then pin the clauses needed by the final derivation.
  /// With options_.count_range > 0 the counting is performed in several
  /// passes, each covering one range of learned-clause ordinals.
  void counting_pass() {
    const std::uint64_t range =
        options_.count_range == 0 ? num_learned_slots_ : options_.count_range;
    for (std::uint64_t lo = 0; lo < num_learned_slots_; lo += range) {
      const std::uint64_t hi = lo + range;
      reader_->rewind();
      trace::Record rec;
      bool ended = false;
      while (!ended && reader_->next(rec)) {
        if (rec.kind == trace::RecordKind::End) {
          ended = true;
        } else if (rec.kind == trace::RecordKind::Derivation) {
          for (const ClauseId s : rec.sources) {
            if (s < num_original()) continue;
            const std::uint64_t ord = ordinal(s);
            if (ord >= lo && ord < hi) counts_->increment(ord);
          }
        }
      }
    }

    // Pin the final conflicting clause and every level-0 antecedent: they
    // must survive the streaming pass for the empty-clause derivation.
    if (final_id_.has_value() && *final_id_ >= num_original()) {
      counts_->increment(ordinal(*final_id_));
    }
    for (Var v = 0; v < reader_->num_vars(); ++v) {
      if (level0_.implied(v) && level0_.antecedent(v) >= num_original()) {
        const ClauseId a = level0_.antecedent(v);
        if (ordinal(a) >= num_learned_slots_) {
          throw CheckFailure("level-0 antecedent " + std::to_string(a) +
                             " of x" + std::to_string(v) +
                             " is never derived in the trace");
        }
        counts_->increment(ordinal(a));
      }
    }
  }

  /// Third traversal: replay every derivation in generation order,
  /// releasing clauses whose uses are exhausted (the core of Section 3.3).
  void resolution_pass() {
    reader_->rewind();
    trace::Record rec;
    bool ended = false;
    while (!ended && reader_->next(rec)) {
      if (rec.kind == trace::RecordKind::End) {
        ended = true;
        continue;
      }
      if (rec.kind != trace::RecordKind::Derivation) continue;

      chain_.start(fetch_clause(rec.sources[0]));
      for (std::size_t i = 1; i < rec.sources.size(); ++i) {
        const ResolveResult r = chain_.step(fetch_clause(rec.sources[i]));
        ++stats_.resolutions;
        if (r.status != ResolveStatus::Ok) {
          throw CheckFailure(
              "derivation of clause " + std::to_string(rec.id) +
              ": resolving with source " + std::to_string(rec.sources[i]) +
              " (step " + std::to_string(i) + ") failed: " +
              (r.status == ResolveStatus::NoClash
                   ? "no clashing variable"
                   : "more than one clashing variable"));
        }
      }
      ++stats_.clauses_built;

      // Release sources whose last use this was; their arena blocks go on
      // the free lists, so the derived clause below typically reuses one.
      // The decrements go down as one batch per chain (one virtual call
      // instead of one per antecedent); the store reports exhausted
      // ordinals in decrement order, so blocks hit the free lists in the
      // same sequence the per-antecedent loop produced.
      ord_scratch_.clear();
      for (const ClauseId s : rec.sources) {
        if (s >= num_original()) ord_scratch_.push_back(ordinal(s));
      }
      exhausted_scratch_.clear();
      counts_->decrement_batch(ord_scratch_, exhausted_scratch_);
      for (const std::uint64_t ord : exhausted_scratch_) {
        release(static_cast<ClauseId>(ord) + num_original());
      }
      // Keep the freshly built clause only if something still needs it
      // (stored unsorted — resolution is set-based and nothing downstream
      // reads stored literal order).
      if (counts_->get(ordinal(rec.id)) > 0) {
        store_.put(rec.id, chain_.lits());
      }
    }
  }

  /// Fetches a clause for resolution: originals are canonicalized into a
  /// scratch buffer (the formula itself stays the single copy in memory);
  /// learned clauses come from the live window. The returned view is valid
  /// until the next fetch.
  ClauseView fetch_clause(ClauseId id) {
    if (id < num_original()) {
      // Canonicalize in place: the scratch buffer's capacity is reused
      // across the millions of original-clause fetches of a long trace.
      const ClauseView raw = formula_->clause(id);
      scratch_.assign(raw.begin(), raw.end());
      std::sort(scratch_.begin(), scratch_.end());
      scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                     scratch_.end());
      if (is_tautology(scratch_)) {
        throw CheckFailure(
            "original clause " + std::to_string(id) +
            " is tautological and cannot be a resolution source");
      }
      return scratch_;
    }
    if (!store_.contains(id)) {
      throw CheckFailure(
          "clause " + std::to_string(id) +
          " is not available: it was never derived, or its use count was "
          "exhausted earlier than the trace implies");
    }
    return store_.view(id);
  }

  void release(ClauseId id) {
    // A clause built but discarded immediately never entered the store.
    if (store_.contains(id)) store_.release(id);
  }

  const Formula* formula_;
  trace::TraceReader* reader_;
  BreadthFirstOptions options_;
  Level0Table level0_;
  std::unique_ptr<UseCountStore> counts_;
  std::optional<ClauseId> final_id_;
  std::uint64_t num_learned_slots_ = 0;
  ClauseStore store_;
  SortedClause scratch_;
  std::vector<std::uint64_t> ord_scratch_;        ///< per-chain ordinals
  std::vector<std::uint64_t> exhausted_scratch_;  ///< zeroed this chain
  ChainResolver chain_;
  util::MemTracker mem_;
  CheckStats stats_;
};

}  // namespace

CheckResult check_breadth_first(const Formula& f, trace::TraceReader& reader,
                                const BreadthFirstOptions& options) {
  BreadthFirstChecker checker(f, reader, options);
  return checker.run();
}

}  // namespace satproof::checker
