#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace satproof::util {

/// LEB128-style variable-length integer codec.
///
/// The paper (Section 4) observes that its human-readable ASCII trace format
/// costs both disk space and checker parsing time, and estimates a 2-3x
/// compaction from a binary encoding. The binary trace writer implements
/// that suggestion on top of this codec: each value is emitted as 7-bit
/// groups, least significant first, with the high bit of every byte but the
/// last set.

/// Appends the varint encoding of `value` to `out`.
void append_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Writes the varint encoding of `value` to `os`.
void write_varint(std::ostream& os, std::uint64_t value);

/// Reads one varint from `is`. Returns std::nullopt on EOF before the first
/// byte; throws std::runtime_error on a truncated or over-long encoding.
std::optional<std::uint64_t> read_varint(std::istream& is);

/// Decodes one varint from `data` starting at `pos`, advancing `pos`.
/// Throws std::runtime_error on truncation or over-long encodings.
std::uint64_t decode_varint(const std::vector<std::uint8_t>& data,
                            std::size_t& pos);

/// Number of bytes the varint encoding of `value` occupies.
[[nodiscard]] std::size_t varint_size(std::uint64_t value);

}  // namespace satproof::util
