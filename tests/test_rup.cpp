// Tests for the RUP cross-checker: it must accept every proof the
// resolution checkers accept, reject corrupted DAGs, and agree with the
// resolution checker across random sweeps.

#include <gtest/gtest.h>

#include "src/encode/pigeonhole.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/encode/suite.hpp"
#include "src/proof/rup.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

namespace satproof::proof {
namespace {

struct Solved {
  Formula formula;
  trace::MemoryTrace trace;
};

Solved solve_unsat(Formula f) {
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  return {std::move(f), w.take()};
}

TEST(Rup, AcceptsSuiteProofs) {
  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Small)) {
    const Solved su = solve_unsat(inst.formula);
    trace::MemoryTraceReader r(su.trace);
    const RupResult res = check_trace_rup(su.formula, r);
    EXPECT_TRUE(res.ok) << inst.name << ": " << res.error;
    // Note: propagations may legitimately be zero when the persistent
    // prefix alone already settles every check (propagation-dominated
    // instances like blocks world).
    EXPECT_GT(res.clauses_checked, 0u) << inst.name;
  }
}

TEST(Rup, ChecksEveryDerivedClause) {
  const Solved su = solve_unsat(encode::pigeonhole(5));
  trace::MemoryTraceReader r1(su.trace);
  const ProofDag dag = extract_proof(su.formula, r1);
  const RupResult res = check_rup(su.formula, dag);
  ASSERT_TRUE(res.ok) << res.error;
  std::size_t derived = 0;
  for (const auto& n : dag.nodes) derived += n.sources.empty() ? 0 : 1;
  EXPECT_EQ(res.clauses_checked, derived);
}

TEST(Rup, RejectsWeakenedDerivedClause) {
  // Corrupt the DAG: flip a literal of some derived clause so it is no
  // longer implied where it sits in the derivation order.
  const Solved su = solve_unsat(encode::pigeonhole(5));
  trace::MemoryTraceReader r(su.trace);
  ProofDag dag = extract_proof(su.formula, r);

  bool corrupted = false;
  for (auto& node : dag.nodes) {
    // Pick the first derived, non-empty clause.
    if (node.sources.empty() || node.lits.empty()) continue;
    node.lits[0] = ~node.lits[0];
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);
  const RupResult res = check_rup(su.formula, dag);
  // The flipped clause is (almost surely) not RUP at its position; if the
  // flip happened to produce an implied clause, downstream nodes relying on
  // the original would fail instead. Either way: rejection.
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

TEST(Rup, RejectsForeignLeaf) {
  const Solved su = solve_unsat(encode::pigeonhole(4));
  trace::MemoryTraceReader r(su.trace);
  ProofDag dag = extract_proof(su.formula, r);
  // Claim a leaf beyond the original range.
  for (auto& node : dag.nodes) {
    if (node.sources.empty()) {
      node.id = dag.num_original + 100000;
      break;
    }
  }
  const RupResult res = check_rup(su.formula, dag);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("leaf"), std::string::npos);
}

TEST(Rup, TrivialEmptyClauseFormula) {
  Formula f;
  f.add_clause(std::initializer_list<Lit>{});
  const Solved su = solve_unsat(std::move(f));
  trace::MemoryTraceReader r(su.trace);
  const RupResult res = check_trace_rup(su.formula, r);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Rup, AssumptionRefutationsAreRup) {
  Formula f(3);
  f.add_clause({Lit::neg(0), Lit::pos(1)});
  f.add_clause({Lit::neg(1), Lit::pos(2)});
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  const Lit assume[] = {Lit::pos(0), Lit::neg(2)};
  ASSERT_EQ(s.solve(assume), solver::SolveResult::Unsatisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  const RupResult res = check_trace_rup(f, r);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Rup, SatTraceRejectedGracefully) {
  Formula f(2);
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  const RupResult res = check_trace_rup(f, r);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

class RupSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RupSweep, AgreesWithResolutionCheckingOnRandomUnsat) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    const unsigned n = 18 + static_cast<unsigned>(rng.next_below(8));
    const Formula f = encode::random_ksat(
        n, static_cast<unsigned>(n * 5.0), 3, rng.next_u64());
    solver::Solver s;
    s.add_formula(f);
    trace::MemoryTraceWriter w;
    s.set_trace_writer(&w);
    if (s.solve() != solver::SolveResult::Unsatisfiable) continue;
    const trace::MemoryTrace t = w.take();
    trace::MemoryTraceReader r(t);
    const RupResult res = check_trace_rup(f, r);
    EXPECT_TRUE(res.ok) << res.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RupSweep, ::testing::Values(31, 62, 93));

}  // namespace
}  // namespace satproof::proof
