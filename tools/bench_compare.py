#!/usr/bin/env python3
"""CI benchmark-regression gate.

Compares a fresh --quick run of one of the repo benches against the
committed baseline and fails (exit 1) when any wall-time metric regresses
by more than the threshold.

  bench_compare.py --bench table2   BENCH_checkers.json fresh_table2.json
  bench_compare.py --bench parallel BENCH_checkers.json fresh_parallel.json
  bench_compare.py --bench service  BENCH_service.json  fresh_service.json
  bench_compare.py --bench micro    BENCH_checkers.json fresh_micro.json

More than one current file may be given; each metric takes its best
(minimum) value across them. CI runs every quick bench three times and
gates on the best-of-3, since single --quick runs are milliseconds and
scheduler noise alone approaches the threshold.

Baseline layout (committed):
  BENCH_checkers.json  "quick" block      -> table2_checkers --quick totals
                       "parallel_quick"   -> parallel_speedup --quick doc
                       "micro_quick"      -> micro_resolver --quick doc
  BENCH_service.json   "quick" block      -> service_throughput --quick doc

Current layout (fresh run):
  table2_checkers --quick --json FILE     (totals under "arena")
  parallel_speedup --quick --json FILE    (totals at top level)
  service_throughput --quick --json FILE  (runs at top level)
  micro_resolver --quick --json FILE      (totals at top level)

Scaling-curve metrics (the service worker_sweep) are only comparable when
the baseline was recorded on a machine with the same hardware thread
count; when the counts differ those metrics are skipped with a warning
instead of gating a scaling curve against, say, a flat 1-core recording.

Refreshing baselines (run on the reference machine, release-ndebug build):
  see docs/OBSERVABILITY.md, "Refreshing the benchmark baselines".

Exit codes: 0 = within threshold, 1 = regression, 2 = nothing comparable
(missing blocks, suite mismatch, or every metric under the noise floor).
"""

import argparse
import json
import os
import sys

# Metrics with a baseline below this are scheduler noise at --quick scale;
# they are reported but never gate.
DEFAULT_MIN_SECONDS = 0.0005

# Same idea for byte metrics (peak-RSS readings): below this the
# measurement is dominated by allocator/page-cache noise in the forked
# child, not by anything the checker did.
DEFAULT_MIN_BYTES = 4 << 20

# One-shot warnings (extract() runs once per current file).
_warned = set()


def warn_once(msg):
    if msg not in _warned:
        _warned.add(msg)
        print(msg, file=sys.stderr)


def load(path):
    with open(path) as f:
        return json.load(f)


def totals_metrics(totals, keys):
    return {k: totals[k] for k in keys if k in totals}


def extract(bench, baseline_doc, current_doc):
    """Returns (baseline_metrics, current_metrics, baseline_suite,
    current_suite); every metric is seconds, lower is better."""
    if bench == "table2":
        base = baseline_doc.get("quick") or baseline_doc.get("arena") or {}
        cur = current_doc.get("arena") or current_doc
        keys = ("df_seconds", "bf_seconds", "hybrid_seconds", "window_seconds")
        base_metrics = totals_metrics(base.get("totals", {}), keys)
        cur_metrics = totals_metrics(cur.get("totals", {}), keys)
        # The LRAT-emission DF sweep gates like any other wall time, so
        # certificate emission cannot silently get slower (older baselines
        # without the block simply don't contribute the metric).
        base_lrat = baseline_doc.get("lrat_overhead_quick") or {}
        cur_lrat = current_doc.get("lrat_overhead") or {}
        if "df_seconds_emitting" in base_lrat and "df_seconds_emitting" in cur_lrat:
            base_metrics["df_seconds_emitting"] = base_lrat["df_seconds_emitting"]
            cur_metrics["df_seconds_emitting"] = cur_lrat["df_seconds_emitting"]
        # Peak-RSS-per-backend (the "memory" block, forked-getrusage
        # readings) gates exactly like wall time: a backend quietly
        # growing its real footprint >threshold% fails the leg. Bytes
        # metrics get their own noise floor (--min-bytes).
        for k, v in (base.get("memory") or {}).items():
            if k.endswith("_bytes") and k in (cur.get("memory") or {}):
                base_metrics[k] = v
                cur_metrics[k] = cur["memory"][k]
        return (base_metrics, cur_metrics, base.get("suite"), cur.get("suite"))
    if bench == "parallel":
        base = baseline_doc.get("parallel_quick") or baseline_doc
        cur = current_doc
        keys = ("df_seconds", "par1_seconds", "par2_seconds", "par4_seconds")
        return (
            totals_metrics(base.get("totals", {}), keys),
            totals_metrics(cur.get("totals", {}), keys),
            base.get("suite"),
            cur.get("suite"),
        )
    if bench == "service":
        base = baseline_doc.get("quick") or baseline_doc
        cur = current_doc

        # The worker_sweep is a scaling curve: jobs/s at 1/2/4/hw workers.
        # Its shape depends on the machine's core count, so comparing a
        # fresh sweep against a baseline recorded with a different
        # hardware_threads gates real scaling against (say) a flat 1-core
        # curve. Skip the curve — the client-sweep throughput metrics
        # still gate.
        base_threads = base.get("hardware_threads")
        cur_threads = cur.get("hardware_threads") or os.cpu_count()
        sweep_comparable = (
            base_threads is None
            or cur_threads is None
            or base_threads == cur_threads
        )
        if not sweep_comparable:
            warn_once(
                "bench_compare: WARNING: baseline worker_sweep was recorded "
                "with hardware_threads=%s but this machine has %s; skipping "
                "seconds[workers=N] scaling metrics (refresh the baseline on "
                "matching hardware to re-enable them)"
                % (base_threads, cur_threads)
            )

        def per_run(doc):
            out = {}
            for run in doc.get("runs", []):
                out["seconds[clients=%d]" % run["clients"]] = run["seconds"]
            if sweep_comparable:
                for run in doc.get("worker_sweep", []):
                    out["seconds[workers=%d]" % run["workers"]] = run["seconds"]
            return out

        return per_run(base), per_run(cur), base.get("suite"), cur.get("suite")
    if bench == "micro":
        base = baseline_doc.get("micro_quick") or baseline_doc.get("micro") or {}
        cur = current_doc

        def micro_totals(doc):
            totals = doc.get("totals", {})
            return {
                k: v for k, v in totals.items() if k.endswith("_seconds")
            }

        return (
            micro_totals(base),
            micro_totals(cur),
            base.get("suite"),
            cur.get("suite"),
        )
    raise ValueError("unknown bench %r" % bench)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument(
        "current",
        nargs="+",
        help="fresh --quick --json output(s); metrics take the best across them",
    )
    ap.add_argument(
        "--bench",
        required=True,
        choices=("table2", "parallel", "service", "micro"),
        help="which bench pair is being compared",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="max tolerated wall-time regression, percent (default 25)",
    )
    ap.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="noise floor: metrics with a smaller baseline never gate",
    )
    ap.add_argument(
        "--min-bytes",
        type=float,
        default=DEFAULT_MIN_BYTES,
        help="noise floor for *_bytes metrics (peak-RSS readings)",
    )
    args = ap.parse_args()

    try:
        baseline_doc = load(args.baseline)
        current_docs = [load(p) for p in args.current]
    except (OSError, json.JSONDecodeError) as e:
        print("bench_compare: cannot load inputs: %s" % e, file=sys.stderr)
        return 2

    base, cur, base_suite, cur_suite = extract(
        args.bench, baseline_doc, current_docs[0]
    )
    for doc in current_docs[1:]:
        _, more, _, more_suite = extract(args.bench, baseline_doc, doc)
        if more_suite != cur_suite:
            print(
                "bench_compare: current runs disagree on suite (%r vs %r)"
                % (cur_suite, more_suite),
                file=sys.stderr,
            )
            return 2
        for name, value in more.items():
            cur[name] = min(cur.get(name, value), value)
    if base_suite and cur_suite and base_suite != cur_suite:
        print(
            "bench_compare: suite mismatch (baseline %r vs current %r); "
            "refresh the committed baseline" % (base_suite, cur_suite),
            file=sys.stderr,
        )
        return 2

    common = sorted(set(base) & set(cur))
    if not common:
        print(
            "bench_compare: no overlapping metrics between %s and %s"
            % (args.baseline, ", ".join(args.current)),
            file=sys.stderr,
        )
        return 2

    gated = 0
    regressions = []
    print(
        "bench_compare [%s]: threshold +%.0f%%, noise floor %gs"
        % (args.bench, args.threshold, args.min_seconds)
    )
    for name in common:
        b, c = base[name], cur[name]
        is_bytes = name.endswith("_bytes")
        floor = args.min_bytes if is_bytes else args.min_seconds
        delta_pct = (c - b) / b * 100.0 if b > 0 else 0.0
        if b < floor:
            verdict = "skip (under noise floor)"
        else:
            gated += 1
            if delta_pct > args.threshold:
                verdict = "REGRESSION"
                regressions.append(name)
            else:
                verdict = "ok"
        if is_bytes:
            print(
                "  %-24s baseline %10.0fB  current %10.0fB  %+7.1f%%  %s"
                % (name, b, c, delta_pct, verdict)
            )
        else:
            print(
                "  %-24s baseline %.6fs  current %.6fs  %+7.1f%%  %s"
                % (name, b, c, delta_pct, verdict)
            )

    if not gated:
        print(
            "bench_compare: every metric is under the noise floor; "
            "nothing was gated",
            file=sys.stderr,
        )
        return 2
    if regressions:
        print(
            "bench_compare: FAIL — %d metric(s) regressed >%.0f%%: %s"
            % (len(regressions), args.threshold, ", ".join(regressions)),
            file=sys.stderr,
        )
        return 1
    print("bench_compare: PASS (%d gated metric(s))" % gated)
    return 0


if __name__ == "__main__":
    sys.exit(main())
