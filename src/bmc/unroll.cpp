#include "src/bmc/unroll.hpp"

#include <stdexcept>

#include "src/circuit/tseitin.hpp"

namespace satproof::bmc {

UnrollResult unroll_detailed(const SequentialCircuit& seq, unsigned k) {
  circuit::Netlist whole;
  std::vector<circuit::Wire> bads;
  bads.reserve(k + 1);
  std::vector<std::vector<circuit::Wire>> frame_input_wires(k + 1);

  // Current value of each register at the frame being built.
  std::vector<circuit::Wire> state(seq.registers.size());
  for (std::size_t r = 0; r < seq.registers.size(); ++r) {
    state[r] = whole.constant(seq.registers[r].init);
  }

  for (unsigned t = 0; t <= k; ++t) {
    std::vector<circuit::Wire> input_map(seq.comb.num_wires(),
                                         circuit::kInvalidWire);
    for (std::size_t r = 0; r < seq.registers.size(); ++r) {
      input_map[seq.registers[r].q] = state[r];
    }
    for (const circuit::Wire w : seq.comb.inputs()) {
      if (input_map[w] == circuit::kInvalidWire) {
        input_map[w] = whole.add_input();  // fresh free input per frame
        frame_input_wires[t].push_back(input_map[w]);
      }
    }
    const std::vector<circuit::Wire> map =
        circuit::copy_into(whole, seq.comb, input_map);
    bads.push_back(map[seq.bad]);
    for (std::size_t r = 0; r < seq.registers.size(); ++r) {
      state[r] = map[seq.registers[r].next];
    }
  }

  const circuit::Wire any_bad = whole.reduce_or(bads);
  const circuit::Wire asserted[] = {any_bad};
  circuit::TseitinResult ts = circuit::tseitin(whole, asserted);

  UnrollResult out;
  out.formula = std::move(ts.formula);
  out.frame_inputs.resize(k + 1);
  for (unsigned t = 0; t <= k; ++t) {
    for (const circuit::Wire w : frame_input_wires[t]) {
      out.frame_inputs[t].push_back(ts.wire_var[w]);
    }
  }
  return out;
}

Formula unroll(const SequentialCircuit& seq, unsigned k) {
  return unroll_detailed(seq, k).formula;
}

}  // namespace satproof::bmc
