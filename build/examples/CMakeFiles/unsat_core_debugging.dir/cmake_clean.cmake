file(REMOVE_RECURSE
  "CMakeFiles/unsat_core_debugging.dir/unsat_core_debugging.cpp.o"
  "CMakeFiles/unsat_core_debugging.dir/unsat_core_debugging.cpp.o.d"
  "unsat_core_debugging"
  "unsat_core_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsat_core_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
