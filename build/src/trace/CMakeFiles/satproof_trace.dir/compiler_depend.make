# Empty compiler generated dependencies file for satproof_trace.
# This may be replaced when dependencies are built.
