#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "src/service/run_check.hpp"
#include "src/util/temp_file.hpp"

namespace satproof::service {

/// One admitted proof-checking job. The CNF and trace were streamed to
/// temp files during upload; the request owns them, so their bytes live
/// exactly as long as the job does.
struct JobRequest {
  std::uint64_t id = 0;
  Backend backend = Backend::kDf;
  unsigned jobs = 0;             ///< parallel-backend worker count
  std::uint32_t timeout_ms = 0;  ///< wall-clock budget from enqueue; 0 = none
  bool certify = false;  ///< emit an LRAT certificate (kSubmitFlagCertify)
  util::TempFile cnf_file;
  util::TempFile trace_file;
  std::chrono::steady_clock::time_point enqueued_at;
  /// Upload duration (SUBMIT to SUBMIT_END) on the ingest loop, carried
  /// along so the job's span tree can include the ingest stage.
  std::uint64_t ingest_us = 0;
};

/// Priority lane of an admitted job. Fast jobs overtake bulk jobs at
/// every pop and steal, so a burst of multi-MB uploads cannot starve
/// small submissions of worker time.
enum class Lane : std::uint8_t {
  kFast = 0,
  kBulk = 1,
};

/// Upload size at which a job is classed as bulk. Chosen from the
/// suite shape: every Table-2 instance's CNF + binary trace is well under
/// 1 MiB, while "someone replaying an overnight solver log" is tens of MB.
inline constexpr std::uint64_t kBulkLaneThresholdBytes = 1u << 20;

/// Lane for a job whose upload totalled `bytes` (declared, or measured at
/// ingest when the client declared nothing).
[[nodiscard]] inline Lane lane_for_bytes(std::uint64_t bytes) {
  return bytes >= kBulkLaneThresholdBytes ? Lane::kBulk : Lane::kFast;
}

/// Worker-side completion: invoked exactly once, on the worker thread,
/// with the job's outcome. The server's callback encodes the result frame
/// and hands it to the I/O loop; it must not block.
using JobCompletion = std::function<void(JobOutcome outcome, bool timed_out)>;

/// A job plus its scheduling metadata, as stored in the queue.
struct QueuedJob {
  JobRequest request;
  Lane lane = Lane::kFast;
  JobCompletion on_done;
};

/// Bounded, sharded, two-lane work-stealing queue — the backpressure
/// point and the scheduler of the service.
///
/// Admission control lives here and nowhere else: try_enqueue refuses
/// when the queue holds `capacity` not-yet-started jobs across all shards
/// (the caller answers BUSY) or after close() (the caller answers
/// DRAINING).
///
/// Each worker owns one shard and pops from its front; an idle worker
/// steals from the *back* of other shards' deques. Lane priority is
/// strict and global: a fast-lane job on any shard is taken before a
/// bulk job on any shard, own shard first within each lane. Jobs are
/// distributed round-robin at enqueue, so under load every worker mostly
/// touches its own mutex; stealing only kicks in when shards go uneven.
///
/// close() stops admission but not draining: pop_blocking keeps handing
/// out queued jobs until every shard is empty, then returns nullopt to
/// each worker. Every admitted job is executed exactly once.
class ShardedJobQueue {
 public:
  /// `shards` is the worker count (>= 1); worker w owns shard w.
  ShardedJobQueue(unsigned shards, std::size_t capacity);

  enum class EnqueueResult { kAccepted, kFull, kClosed };

  /// Admits a job into its lane on a round-robin shard. On kFull/kClosed
  /// the job (and its temp files) is destroyed.
  EnqueueResult try_enqueue(QueuedJob&& job);

  /// Non-blocking take for worker `worker`: fast lane first (own shard's
  /// front, then other shards' backs), then the bulk lane the same way.
  /// nullopt when every shard is empty.
  std::optional<QueuedJob> try_pop(unsigned worker);

  /// Blocking take: waits until a job is available or the queue is closed
  /// *and* fully drained (nullopt — the worker should exit).
  std::optional<QueuedJob> pop_blocking(unsigned worker);

  /// Refuses all future enqueues (drain). Queued jobs still run.
  void close();

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }
  /// Jobs admitted but not yet taken by a worker, across all shards.
  [[nodiscard]] std::size_t depth() const {
    return size_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] unsigned shards() const {
    return static_cast<unsigned>(shards_.size());
  }

  /// Point-in-time view of one shard, for metrics exposition.
  struct ShardSnapshot {
    std::size_t depth_fast = 0;  ///< fast-lane jobs waiting in the shard
    std::size_t depth_bulk = 0;
    std::uint64_t enqueued_fast = 0;  ///< cumulative fast-lane admissions
    std::uint64_t enqueued_bulk = 0;
    std::uint64_t steals = 0;  ///< jobs worker `shard` obtained by stealing
  };
  [[nodiscard]] ShardSnapshot shard_snapshot(unsigned shard) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::deque<QueuedJob> fast;
    std::deque<QueuedJob> bulk;
    std::uint64_t enqueued_fast = 0;
    std::uint64_t enqueued_bulk = 0;
    /// Jobs the shard's *owner* obtained by stealing from someone else
    /// (guarded by the owner's shard mutex, read under it by snapshots).
    std::uint64_t steals = 0;
  };

  /// Pops from `shard`: front when the owner takes its own work, back
  /// when a thief steals. nullopt when the requested lane is empty.
  std::optional<QueuedJob> take(Shard& s, Lane lane, bool from_back);

  const std::size_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<bool> closed_{false};

  // Two-phase sleep for idle workers: producers bump size_ first, then
  // touch sleep_mutex_ before notifying, so a worker that checked size_
  // under the mutex can never miss a wakeup.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

}  // namespace satproof::service
