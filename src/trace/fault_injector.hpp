#pragma once

#include <cstdint>
#include <string>

#include "src/trace/events.hpp"
#include "src/util/rng.hpp"

namespace satproof::trace {

/// Ways a buggy solver (or buggy trace generation) can corrupt a trace.
///
/// The paper's motivation for the checker is that "quite a few submitted
/// SAT solvers were found to be buggy" in the SAT 2002 competition and that
/// the checker "can provide information for debugging when checking fails".
/// Each mode below models one realistic solver bug; the test suite asserts
/// that both checkers reject every one of them with a diagnostic.
enum class FaultKind : std::uint8_t {
  None,             ///< pass-through (sanity baseline)
  DropSource,       ///< omit one resolve source from a derivation
  DuplicateSource,  ///< repeat a resolve source (double resolution on a var)
  ShuffleSources,   ///< reverse a derivation's source order
  WrongSource,      ///< replace one source ID with a different valid ID
  DropDerivation,   ///< omit a whole derivation record (dangling reference)
  WrongFinal,       ///< point the final conflict at a non-conflicting clause
  FlipLevel0Value,  ///< record the wrong value for a level-0 assignment
  WrongAntecedent,  ///< give a level-0 variable a bogus antecedent clause
  DropLevel0,       ///< omit one level-0 assignment record
  TruncateTrace,    ///< stop writing mid-trace (solver crash mid-dump)
};

/// Human-readable name of a fault kind (for test diagnostics and the
/// buggy_solver example).
[[nodiscard]] std::string to_string(FaultKind kind);

/// TraceWriter decorator that forwards to an inner writer while injecting
/// exactly one fault of the configured kind, selected pseudo-randomly among
/// the eligible records by a deterministic seed.
class FaultInjector final : public TraceWriter {
 public:
  /// Wraps `inner` (must outlive the injector). `target_index` picks which
  /// eligible record is corrupted: faults become active on the
  /// `target_index`-th opportunity (0-based), making tests deterministic.
  FaultInjector(TraceWriter& inner, FaultKind kind, std::uint64_t seed = 1,
                std::uint64_t target_index = 0);

  void begin(Var num_vars, ClauseId num_original) override;
  void derivation(ClauseId id, std::span<const ClauseId> sources) override;
  void final_conflict(ClauseId id) override;
  void level0(Var var, bool value, ClauseId antecedent) override;
  void assumption(Var var, bool value) override;
  void end() override;

  /// True once the fault has actually been injected. A test that requests
  /// a fault but never hits an eligible record should be treated as
  /// inconclusive rather than passing vacuously.
  [[nodiscard]] bool fired() const { return fired_; }

 private:
  bool should_fire();

  TraceWriter* inner_;
  FaultKind kind_;
  util::Rng rng_;
  std::uint64_t target_index_;
  std::uint64_t opportunities_ = 0;
  bool fired_ = false;
  bool truncated_ = false;
};

}  // namespace satproof::trace
