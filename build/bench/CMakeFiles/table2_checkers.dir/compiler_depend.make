# Empty compiler generated dependencies file for table2_checkers.
# This may be replaced when dependencies are built.
