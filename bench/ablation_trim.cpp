// Ablation F: proof trimming. The depth-first checker's observation that
// only part of the learned clauses participate in the proof (paper
// Section 3.2) becomes a service here: re-emit the trace without the dead
// derivations. Reports derivation counts, ASCII trace bytes, and
// breadth-first checking time before/after (breadth-first builds
// everything in the trace, so it benefits fully from trimming).

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/suite_runner.hpp"
#include "src/checker/breadth_first.hpp"
#include "src/proof/trim.hpp"
#include "src/trace/ascii.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace satproof;

  util::Table table({"Instance", "Derivs Before", "Derivs After", "Kept",
                     "ASCII KB Before", "ASCII KB After", "BF Before (s)",
                     "BF After (s)"});

  for (auto& solved : bench::solve_suite(encode::SuiteScale::Standard)) {
    const Formula& f = solved.instance.formula;

    trace::MemoryTraceReader in(solved.trace);
    trace::MemoryTraceWriter trimmed_writer;
    const proof::TrimStats stats = proof::trim_trace(in, trimmed_writer);
    const trace::MemoryTrace trimmed = trimmed_writer.take();

    // Sizes in the ASCII file format.
    std::ostringstream before_text, after_text;
    {
      trace::AsciiTraceWriter wa(before_text);
      trace::MemoryTraceReader r(solved.trace);
      wa.begin(r.num_vars(), r.num_original());
      trace::Record rec;
      while (r.next(rec) && rec.kind != trace::RecordKind::End) {
        switch (rec.kind) {
          case trace::RecordKind::Derivation:
            wa.derivation(rec.id, rec.sources);
            break;
          case trace::RecordKind::FinalConflict:
            wa.final_conflict(rec.id);
            break;
          case trace::RecordKind::Level0:
            wa.level0(rec.var, rec.value, rec.antecedent);
            break;
          default:
            break;
        }
      }
      wa.end();
      trace::AsciiTraceWriter wb(after_text);
      trace::MemoryTraceReader r2(trimmed);
      wb.begin(r2.num_vars(), r2.num_original());
      while (r2.next(rec) && rec.kind != trace::RecordKind::End) {
        switch (rec.kind) {
          case trace::RecordKind::Derivation:
            wb.derivation(rec.id, rec.sources);
            break;
          case trace::RecordKind::FinalConflict:
            wb.final_conflict(rec.id);
            break;
          case trace::RecordKind::Level0:
            wb.level0(rec.var, rec.value, rec.antecedent);
            break;
          default:
            break;
        }
      }
      wb.end();
    }

    double before_secs = 0.0, after_secs = 0.0;
    {
      trace::MemoryTraceReader r(solved.trace);
      util::Timer t;
      const auto res = checker::check_breadth_first(f, r);
      before_secs = t.elapsed_seconds();
      if (!res.ok) {
        std::cerr << "FATAL: " << solved.instance.name << ": " << res.error
                  << "\n";
        return 1;
      }
    }
    {
      trace::MemoryTraceReader r(trimmed);
      util::Timer t;
      const auto res = checker::check_breadth_first(f, r);
      after_secs = t.elapsed_seconds();
      if (!res.ok) {
        std::cerr << "FATAL (trimmed): " << solved.instance.name << ": "
                  << res.error << "\n";
        return 1;
      }
    }

    table.add_row(
        {solved.instance.name, std::to_string(stats.derivations_before),
         std::to_string(stats.derivations_after),
         util::format_percent(static_cast<double>(stats.derivations_after),
                              static_cast<double>(stats.derivations_before)),
         util::format_kb(before_text.str().size()),
         util::format_kb(after_text.str().size()),
         util::format_double(before_secs, 3),
         util::format_double(after_secs, 3)});
  }

  std::cout << "Ablation F: proof trimming (drop derivations unreachable "
               "from the final conflict)\n"
            << "(paper Section 3.2: only 19-90% of learned clauses "
               "participate in the proof)\n\n"
            << table.to_string();
  return 0;
}
