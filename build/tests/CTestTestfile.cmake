# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_cnf[1]_include.cmake")
include("/root/repo/build/tests/test_resolution[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_checker[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_bmc[1]_include.cmake")
include("/root/repo/build/tests/test_encode[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_proof[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_checker_components[1]_include.cmake")
include("/root/repo/build/tests/test_assumptions[1]_include.cmake")
include("/root/repo/build/tests/test_rup[1]_include.cmake")
include("/root/repo/build/tests/test_simplify[1]_include.cmake")
include("/root/repo/build/tests/test_interpolant[1]_include.cmake")
include("/root/repo/build/tests/test_rewrite_sorting[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_cardinality[1]_include.cmake")
include("/root/repo/build/tests/test_umbrella[1]_include.cmake")
include("/root/repo/build/tests/test_drup[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
