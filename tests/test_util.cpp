// Unit tests for src/util: PRNG, varint codec, memory tracker, temp files,
// table formatting, thread pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/thread_pool.hpp"

#include "src/util/arena.hpp"
#include "src/util/byte_source.hpp"
#include "src/util/mem_tracker.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"
#include "src/util/temp_file.hpp"
#include "src/util/timer.hpp"
#include "src/util/varint.hpp"

namespace satproof::util {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) differing += a.next_u64() != b.next_u64();
  EXPECT_GT(differing, 90);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.next_below(10)];
  for (int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo = hit_lo || v == -2;
    hit_hi = hit_hi || v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(9);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v.begin(), v.end());
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Varint, RoundTripsEdgeValues) {
  const std::uint64_t values[] = {0,    1,    127,  128,   129,
                                  1000, 1u << 14, (1u << 14) + 1,
                                  0xffffffffULL, ~std::uint64_t{0}};
  for (const auto v : values) {
    std::stringstream ss;
    write_varint(ss, v);
    EXPECT_EQ(static_cast<std::size_t>(ss.str().size()), varint_size(v));
    const auto back = read_varint(ss);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
}

TEST(Varint, ReadAtEofReturnsNullopt) {
  std::stringstream ss;
  EXPECT_FALSE(read_varint(ss).has_value());
}

TEST(Varint, TruncatedEncodingThrows) {
  std::stringstream ss;
  ss.put(static_cast<char>(0x80));  // continuation bit, then EOF
  EXPECT_THROW(read_varint(ss), std::runtime_error);
}

TEST(Varint, BufferDecodeMatchesStream) {
  std::vector<std::uint8_t> buf;
  append_varint(buf, 300);
  append_varint(buf, 0);
  append_varint(buf, ~std::uint64_t{0});
  std::size_t pos = 0;
  EXPECT_EQ(decode_varint(buf, pos), 300u);
  EXPECT_EQ(decode_varint(buf, pos), 0u);
  EXPECT_EQ(decode_varint(buf, pos), ~std::uint64_t{0});
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, BufferTruncationThrows) {
  std::vector<std::uint8_t> buf{0x80};
  std::size_t pos = 0;
  EXPECT_THROW(decode_varint(buf, pos), std::runtime_error);
}

TEST(Varint, ZeroIsOneByte) {
  std::vector<std::uint8_t> buf;
  append_varint(buf, 0);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0u);
}

TEST(Varint, MaxValueIsTenBytes) {
  std::vector<std::uint8_t> buf;
  append_varint(buf, ~std::uint64_t{0});
  ASSERT_EQ(buf.size(), 10u);
  EXPECT_EQ(buf.back(), 0x01u);  // the 64th bit, alone in the tenth byte
  std::size_t pos = 0;
  EXPECT_EQ(decode_varint(buf, pos), ~std::uint64_t{0});
}

TEST(Varint, TruncationMidVarintThrows) {
  // A valid 3-byte encoding cut after each proper prefix.
  std::vector<std::uint8_t> full;
  append_varint(full, 1u << 20);
  ASSERT_EQ(full.size(), 3u);
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> buf(full.begin(), full.begin() + cut);
    std::size_t pos = 0;
    EXPECT_THROW(decode_varint(buf, pos), std::runtime_error);
    std::stringstream ss;
    ss.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
    EXPECT_THROW(read_varint(ss), std::runtime_error);
  }
}

TEST(Varint, OverlongEncodingRejected) {
  // 11-byte encoding of a small value: ten continuation bytes never fit.
  const std::vector<std::uint8_t> eleven{0x81, 0x80, 0x80, 0x80, 0x80, 0x80,
                                         0x80, 0x80, 0x80, 0x80, 0x00};
  std::size_t pos = 0;
  EXPECT_THROW(decode_varint(eleven, pos), std::runtime_error);
}

TEST(Varint, NonCanonicalZeroPaddingRejected) {
  // 1 encoded as 0x81 0x00: decodes to the same value as 0x01, so a strict
  // reader must reject it — one value, one encoding.
  const std::vector<std::uint8_t> padded{0x81, 0x00};
  std::size_t pos = 0;
  EXPECT_THROW(decode_varint(padded, pos), std::runtime_error);
  std::stringstream ss;
  ss.put(static_cast<char>(0x81));
  ss.put(static_cast<char>(0x00));
  EXPECT_THROW(read_varint(ss), std::runtime_error);
}

TEST(Varint, TenthByteOverflowRejected) {
  // Ten bytes whose final byte claims bits above the 64th.
  std::vector<std::uint8_t> buf(9, 0xff);
  buf.push_back(0x02);
  std::size_t pos = 0;
  EXPECT_THROW(decode_varint(buf, pos), std::runtime_error);
}

TEST(Varint, PointerDecodeAdvances) {
  std::vector<std::uint8_t> buf;
  append_varint(buf, 7);
  append_varint(buf, 1u << 30);
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  EXPECT_EQ(decode_varint(p, end), 7u);
  EXPECT_EQ(decode_varint(p, end), 1u << 30);
  EXPECT_EQ(p, end);
}

TEST(MemTracker, TracksCurrentAndPeak) {
  MemTracker m;
  m.add(100);
  m.add(50);
  EXPECT_EQ(m.current_bytes(), 150u);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.remove(120);
  EXPECT_EQ(m.current_bytes(), 30u);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.add(10);
  EXPECT_EQ(m.peak_bytes(), 150u);
  m.reset();
  EXPECT_EQ(m.current_bytes(), 0u);
  EXPECT_EQ(m.peak_bytes(), 0u);
}

TEST(MemTracker, RemoveClampsAtZero) {
  MemTracker m;
  m.add(10);
  m.remove(100);
  EXPECT_EQ(m.current_bytes(), 0u);
}

TEST(ClauseFootprint, GrowsWithLength) {
  EXPECT_LT(clause_footprint_bytes(1), clause_footprint_bytes(100));
  EXPECT_GT(clause_footprint_bytes(0), 0u);
}

TEST(TempFile, CreatesAndRemovesFile) {
  std::filesystem::path p;
  {
    TempFile tf("satproof-test");
    p = tf.path();
    EXPECT_TRUE(std::filesystem::exists(p));
    std::ofstream(p) << "data";
  }
  EXPECT_FALSE(std::filesystem::exists(p));
}

TEST(TempFile, MoveTransfersOwnership) {
  TempFile a("satproof-test");
  const auto p = a.path();
  TempFile b = std::move(a);
  EXPECT_EQ(b.path(), p);
  EXPECT_TRUE(a.path().empty());
  EXPECT_TRUE(std::filesystem::exists(p));
}

TEST(TempFile, DistinctPaths) {
  TempFile a("x"), b("x");
  EXPECT_NE(a.path(), b.path());
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "23"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 23    |"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, Helpers) {
  EXPECT_EQ(format_double(1.2345, 2), "1.23");
  EXPECT_EQ(format_kb(2048), "2.0");
  EXPECT_EQ(format_percent(1, 4), "25.0%");
  EXPECT_EQ(format_percent(1, 0), "n/a");
}

TEST(Timer, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.elapsed_seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdlePublishesTaskWrites) {
  // wait_idle() must establish happens-before: plain (non-atomic) writes
  // from the tasks are readable afterwards. TSan validates this for real.
  ThreadPool pool(3);
  std::vector<int> results(256, 0);
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      pool.submit([&results, i] { results[i] += static_cast<int>(i); });
    }
    pool.wait_idle();
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 4);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.wait_idle();
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructionWithQueuedWorkDoesNotHang) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // Destructor joins; tasks not yet started may be discarded, but the
    // pool must shut down cleanly either way.
  }
  EXPECT_LE(count.load(), 100);
}

namespace {
std::vector<Lit> lits(std::initializer_list<int> dimacs) {
  std::vector<Lit> out;
  for (const int d : dimacs) out.push_back(Lit::from_dimacs(d));
  return out;
}
}  // namespace

TEST(ClauseArena, PutAndViewRoundTrip) {
  ClauseArena arena;
  const auto a = lits({1, -2, 3});
  const auto b = lits({-4});
  const ClauseArena::Ref ra = arena.put(a);
  const ClauseArena::Ref rb = arena.put(b);
  ASSERT_EQ(arena.view(ra).size(), 3u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), arena.view(ra).begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), arena.view(rb).begin()));
  EXPECT_EQ(arena.live_clauses(), 2u);
  EXPECT_EQ(arena.live_bytes(),
            ClauseArena::block_bytes(3) + ClauseArena::block_bytes(1));
}

TEST(ClauseArena, EmptyClause) {
  ClauseArena arena;
  const ClauseArena::Ref r = arena.put(std::span<const Lit>{});
  EXPECT_TRUE(arena.view(r).empty());
  EXPECT_EQ(arena.live_bytes(), ClauseArena::block_bytes(0));
}

TEST(ClauseArena, ReleaseRecyclesSameLengthBlocks) {
  ClauseArena arena;
  const ClauseArena::Ref r1 = arena.put(lits({1, 2, 3}));
  arena.release(r1);
  EXPECT_EQ(arena.live_clauses(), 0u);
  EXPECT_EQ(arena.live_bytes(), 0u);
  const ClauseArena::Ref r2 = arena.put(lits({-5, 6, -7}));
  EXPECT_EQ(r2, r1);  // same block reused
  EXPECT_EQ(arena.recycled_bytes(), ClauseArena::block_bytes(3));
  const auto v = arena.view(r2);
  EXPECT_EQ(v[0], Lit::from_dimacs(-5));
  // Peak never dropped below the single live clause.
  EXPECT_EQ(arena.peak_bytes(), ClauseArena::block_bytes(3));
}

TEST(ClauseArena, StatsAccumulate) {
  ClauseArena arena;
  const ClauseArena::Ref r = arena.put(lits({1, 2}));
  arena.put(lits({3, 4, 5}));
  arena.release(r);
  arena.put(lits({-1, -2}));  // recycled
  EXPECT_EQ(arena.allocated_bytes(),
            2 * ClauseArena::block_bytes(2) + ClauseArena::block_bytes(3));
  EXPECT_EQ(arena.recycled_bytes(), ClauseArena::block_bytes(2));
  EXPECT_EQ(arena.peak_bytes(),
            ClauseArena::block_bytes(2) + ClauseArena::block_bytes(3));
}

TEST(ClauseArena, OversizedClauseGetsDedicatedChunk) {
  ClauseArena arena;
  std::vector<Lit> big;
  for (int i = 1; i <= (1 << 16); ++i) big.push_back(Lit::from_dimacs(i));
  const ClauseArena::Ref r = arena.put(big);
  ASSERT_EQ(arena.view(r).size(), big.size());
  EXPECT_TRUE(std::equal(big.begin(), big.end(), arena.view(r).begin()));
  // A small clause afterwards still works (goes to a regular chunk).
  const ClauseArena::Ref s = arena.put(lits({1}));
  EXPECT_EQ(arena.view(s).size(), 1u);
}

TEST(ClauseArena, BlockPointersStableAcrossGrowth) {
  ClauseArena arena;
  // One clause per tier: {1, -2} lands in a headerless binary-tier block,
  // the 3-lit clause in a headered chunk. tagged_block() is the
  // tier-agnostic pointer form (what the parallel checker publishes).
  const ClauseArena::Ref r = arena.put(lits({1, -2}));
  const ClauseArena::Ref r3 = arena.put(lits({6, -7, 8}));
  const Lit* bin_block = arena.tagged_block(r);
  const Lit* long_block = arena.tagged_block(r3);
  // Force many chunk allocations.
  for (int i = 0; i < 100000; ++i) arena.put(lits({3, -4, 5}));
  EXPECT_EQ(arena.tagged_block(r), bin_block);
  EXPECT_EQ(arena.tagged_block(r3), long_block);
  const auto v = ClauseArena::view_of(bin_block);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], Lit::from_dimacs(-2));
  const auto v3 = ClauseArena::view_of(long_block);
  ASSERT_EQ(v3.size(), 3u);
  EXPECT_EQ(v3[2], Lit::from_dimacs(8));
}

TEST(ByteSource, MemorySourceServesWholeRange) {
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  MemoryByteSource src(data);
  const auto w = src.window(0);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(w.begin[4], 5u);
  EXPECT_EQ(src.window(3).size(), 2u);
  EXPECT_EQ(src.window(5).size(), 0u);
}

TEST(ByteSource, StreamSourceRefillsAcrossTinyBuffer) {
  std::string payload;
  for (int i = 0; i < 1000; ++i) payload.push_back(static_cast<char>(i & 0xff));
  std::istringstream is(payload);
  StreamByteSource src(is, 16);  // force many refills
  std::string read;
  std::uint64_t pos = 0;
  while (true) {
    const auto w = src.window(pos);
    if (w.size() == 0) break;
    read.append(reinterpret_cast<const char*>(w.begin), w.size());
    pos += w.size();
  }
  EXPECT_EQ(read, payload);
}

TEST(ByteSource, StreamSourceSeeksBackward) {
  std::istringstream is("abcdefgh");
  StreamByteSource src(is, 4);
  EXPECT_EQ(*src.window(6).begin, 'g');
  EXPECT_EQ(*src.window(0).begin, 'a');  // rewind via seekg
  EXPECT_EQ(*src.window(2).begin, 'c');  // still buffered
}

TEST(ByteSource, MapFileRoundTrip) {
  TempFile tmp("bytesource");
  {
    std::ofstream out(tmp.path(), std::ios::binary);
    out << "mmap me";
  }
  const auto src = ByteSource::map_file(tmp.path());
  const auto w = src->window(0);
  ASSERT_EQ(w.size(), 7u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(w.begin), w.size()),
            "mmap me");
  EXPECT_EQ(src->window(7).size(), 0u);
}

}  // namespace
}  // namespace satproof::util
