// Adversarial trace corpus: every checker backend must reject truncated,
// reordered, wrong-antecedent, wrong-source and cyclic-dependency traces —
// no crash, no false VERIFIED. The happy path is covered elsewhere; this
// file is the systematic hostile sweep across all four trace-replaying
// backends (fault-injected solver traces) plus corrupted DRUP proofs.

#include <gtest/gtest.h>

#include <sstream>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/drup.hpp"
#include "src/checker/hybrid.hpp"
#include "src/checker/parallel.hpp"
#include "src/checker/window.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/drup.hpp"
#include "src/trace/fault_injector.hpp"
#include "src/trace/memory.hpp"

namespace satproof::checker {
namespace {

struct BackendRun {
  const char* name;
  CheckResult result;
};

/// Runs all trace-replaying backends on one trace (the window backend at
/// two budgets: roomy, and small enough to force several windows — a
/// corrupt trace must be rejected on both paths).
std::vector<BackendRun> run_all(const Formula& f, const trace::MemoryTrace& t) {
  std::vector<BackendRun> runs;
  {
    trace::MemoryTraceReader r(t);
    runs.push_back({"depth-first", check_depth_first(f, r)});
  }
  {
    trace::MemoryTraceReader r(t);
    runs.push_back({"breadth-first", check_breadth_first(f, r)});
  }
  {
    trace::MemoryTraceReader r(t);
    runs.push_back({"hybrid", check_hybrid(f, r)});
  }
  {
    trace::MemoryTraceReader r(t);
    ParallelOptions opts;
    opts.jobs = 3;
    runs.push_back({"parallel", check_parallel(f, r, opts)});
  }
  {
    trace::MemoryTraceReader r(t);
    runs.push_back({"window", check_window(f, r)});
  }
  {
    trace::MemoryTraceReader r(t);
    WindowOptions opts;
    opts.mem_limit_bytes = 64 << 10;
    runs.push_back({"window-64k", check_window(f, r, opts)});
  }
  return runs;
}

void expect_all_reject(const Formula& f, const trace::MemoryTrace& t,
                       const std::string& what) {
  for (const BackendRun& run : run_all(f, t)) {
    EXPECT_FALSE(run.result.ok)
        << run.name << " accepted a corrupt trace (" << what << ")";
    if (!run.result.ok) {
      EXPECT_FALSE(run.result.error.empty()) << run.name << " (" << what
                                             << ") rejected without a "
                                                "diagnostic";
    }
  }
}

/// Fault-injection sweep over every backend, mirroring the DF/BF sweep in
/// test_checker.cpp but extended to the hybrid and parallel backends.
class CorruptSweep : public ::testing::TestWithParam<trace::FaultKind> {};

TEST_P(CorruptSweep, EveryBackendRejects) {
  const trace::FaultKind kind = GetParam();
  const Formula f = encode::pigeonhole(5);
  for (const std::uint64_t target : {5ull, 0ull, 50ull}) {
    solver::Solver s;
    s.add_formula(f);
    trace::MemoryTraceWriter inner;
    trace::FaultInjector injector(inner, kind, /*seed=*/7, target);
    s.set_trace_writer(&injector);
    ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
    if (!injector.fired()) continue;
    expect_all_reject(f, inner.take(), trace::to_string(kind));
    return;
  }
  FAIL() << "fault " << trace::to_string(kind)
         << " never fired on any target index";
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, CorruptSweep,
    ::testing::Values(trace::FaultKind::DropSource,
                      trace::FaultKind::DuplicateSource,
                      trace::FaultKind::ShuffleSources,
                      trace::FaultKind::WrongSource,
                      trace::FaultKind::DropDerivation,
                      trace::FaultKind::WrongFinal,
                      trace::FaultKind::FlipLevel0Value,
                      trace::FaultKind::WrongAntecedent,
                      trace::FaultKind::DropLevel0,
                      trace::FaultKind::TruncateTrace),
    [](const auto& info) {
      std::string name = trace::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------------- hand-built pathologies

/// A tiny UNSAT base: x0 and ~x0.
Formula contradiction() {
  Formula f(1);
  f.add_clause({Lit::pos(0)});
  f.add_clause({Lit::neg(0)});
  return f;
}

TEST(CorruptTrace, SelfReferentialDerivationRejected) {
  const Formula f = contradiction();
  trace::MemoryTraceWriter w;
  w.begin(1, 2);
  const ClauseId src[] = {0, 2};  // clause 2 lists itself as a source
  w.derivation(2, src);
  w.final_conflict(2);
  w.level0(0, true, 0);
  w.end();
  expect_all_reject(f, w.take(), "self-referential derivation");
}

TEST(CorruptTrace, ForwardCycleBetweenDerivationsRejected) {
  const Formula f = contradiction();
  trace::MemoryTraceWriter w;
  w.begin(1, 2);
  const ClauseId src2[] = {0, 3};  // 2 depends on 3...
  w.derivation(2, src2);
  const ClauseId src3[] = {1, 2};  // ...and 3 depends on 2
  w.derivation(3, src3);
  w.final_conflict(3);
  w.level0(0, true, 0);
  w.end();
  expect_all_reject(f, w.take(), "derivation cycle");
}

TEST(CorruptTrace, CyclicLevel0AntecedentChainRejected) {
  // Two variables each justified by the clause that needs the other first:
  // the antecedent ordering check must refuse the circular trail.
  Formula f(2);
  f.add_clause({Lit::pos(0), Lit::pos(1)});   // 0
  f.add_clause({Lit::pos(0), Lit::neg(1)});   // 1
  f.add_clause({Lit::neg(0), Lit::pos(1)});   // 2
  f.add_clause({Lit::neg(0), Lit::neg(1)});   // 3
  trace::MemoryTraceWriter w;
  w.begin(2, 4);
  w.final_conflict(3);
  w.level0(0, true, 0);  // x0 "implied" by clause 0, which needs x1 first
  w.level0(1, true, 2);  // x1 "implied" by clause 2, which needs x0 first
  w.end();
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r1(t);
  const CheckResult df = check_depth_first(f, r1);
  EXPECT_FALSE(df.ok);
  expect_all_reject(f, t, "cyclic level-0 antecedents");
}

TEST(CorruptTrace, MissingEndRecordRejected) {
  // A MemoryTrace that never saw end(): the canonical truncation.
  const Formula f = contradiction();
  trace::MemoryTraceWriter w;
  w.begin(1, 2);
  w.final_conflict(0);
  w.level0(0, false, 1);
  // no end()
  expect_all_reject(f, w.take(), "missing end record");
}

TEST(CorruptTrace, ReorderedLevel0TrailRejected) {
  // Produce a genuine trace, then reverse the level-0 trail: antecedent
  // validation depends on chronological order, so checkers must notice.
  const Formula f = encode::pigeonhole(4);
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  trace::MemoryTrace t = w.take();
  ASSERT_GE(t.level0.size(), 2u);
  std::reverse(t.level0.begin(), t.level0.end());
  expect_all_reject(f, t, "reversed level-0 trail");
}

// ----------------------------------------------------- DRUP proof corpus

struct DrupRun {
  Formula formula;
  std::string proof;
};

DrupRun solve_with_drup(Formula f) {
  solver::Solver s;
  s.add_formula(f);
  std::ostringstream proof;
  trace::DrupWriter w(proof);
  s.set_drup_writer(&w);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  return {std::move(f), proof.str()};
}

TEST(CorruptDrup, TruncatedProofRejected) {
  const DrupRun run = solve_with_drup(encode::pigeonhole(5));
  // Cut the proof before the final empty clause.
  const std::size_t cut = run.proof.rfind("0\n");
  ASSERT_NE(cut, std::string::npos);
  std::istringstream in(run.proof.substr(0, cut));
  const DrupCheckResult res = check_drup(run.formula, in);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

TEST(CorruptDrup, NonRupClauseRejected) {
  const DrupRun run = solve_with_drup(encode::pigeonhole(4));
  // Prepend a clause no unit propagation can justify: a free unit clause
  // over a fresh variable cannot be RUP with respect to the formula.
  const std::string vars = std::to_string(run.formula.num_vars() + 1);
  std::istringstream in(vars + " 0\n" + run.proof);
  const DrupCheckResult res = check_drup(run.formula, in);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

}  // namespace
}  // namespace satproof::checker
