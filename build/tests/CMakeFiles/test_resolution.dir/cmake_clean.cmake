file(REMOVE_RECURSE
  "CMakeFiles/test_resolution.dir/test_resolution.cpp.o"
  "CMakeFiles/test_resolution.dir/test_resolution.cpp.o.d"
  "test_resolution"
  "test_resolution.pdb"
  "test_resolution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
