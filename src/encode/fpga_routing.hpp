#pragma once

#include <cstdint>

#include "src/cnf/formula.hpp"

namespace satproof::encode {

/// SAT-based FPGA channel routing (the application domain of the paper's
/// `too_largefs3w8v262` row, after Nam/Sakallah/Rutenbar): nets occupy
/// horizontal spans of a routing channel with a fixed number of tracks;
/// each net must be assigned exactly one track, and nets whose spans
/// overlap must not share one.
///
/// The generator lays out `num_nets` nets with pseudo-random spans over
/// `num_columns` columns and then plants a congestion hot spot: `tracks+1`
/// of the nets are forced to cross one common column, so the channel is
/// un-routable and the instance unsatisfiable. The unsatisfiable core of
/// such an instance names the nets responsible for the congestion — the
/// designer feedback application described in Section 4 of the paper.
///
/// Variables: x(i, t) = "net i uses track t". Clauses: at-least-one and
/// at-most-one track per net, plus a conflict clause per overlapping pair
/// per track.
///
/// With `congested` false no hot spot is planted; the instance is then
/// satisfiable whenever the random spans happen to fit the channel (used
/// for the SAT-side tests).
[[nodiscard]] Formula fpga_routing(unsigned num_nets, unsigned tracks,
                                   unsigned num_columns, std::uint64_t seed,
                                   bool congested = true);

}  // namespace satproof::encode
