file(REMOVE_RECURSE
  "CMakeFiles/table2_checkers.dir/table2_checkers.cpp.o"
  "CMakeFiles/table2_checkers.dir/table2_checkers.cpp.o.d"
  "table2_checkers"
  "table2_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
