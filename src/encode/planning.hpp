#pragma once

#include <cstdint>
#include <vector>

#include "src/cnf/formula.hpp"

namespace satproof::encode {

/// A blocks-world configuration: support[b] is what block b rests on —
/// another block's index, or num_blocks for the table.
using BlocksConfig = std::vector<unsigned>;

/// Encodes "transform `init` into `goal` within `steps` moves" as CNF
/// (fluents on(b,x,t), actions move(b,x,y,t), preconditions, effects,
/// explanatory frame axioms, ladder-encoded at-most-one action per step,
/// exactly-one-position state axioms). Idle steps are allowed, so
/// satisfiability is monotone in `steps`. Both configurations must be
/// well-formed (acyclic, at most one block per block).
[[nodiscard]] Formula blocks_world(const BlocksConfig& init,
                                   const BlocksConfig& goal, unsigned steps);

/// Length of the shortest plan from `init` to `goal`, by breadth-first
/// search over the explicit state space — the ground truth the SAT
/// encoding is validated against, and the knob for generating instances
/// exactly at the satisfiability frontier.
[[nodiscard]] unsigned blocks_world_optimal(const BlocksConfig& init,
                                            const BlocksConfig& goal);

/// A generated planning instance.
struct BlocksWorldInstance {
  Formula formula;
  BlocksConfig init;
  BlocksConfig goal;
  unsigned optimal_steps = 0;  ///< BFS distance from init to goal
  unsigned steps = 0;          ///< bound encoded in `formula`
};

/// Random blocks-world instance in the style of the paper's bw_large.d row:
/// pseudo-random init and goal configurations of `num_blocks` blocks, with
/// the step bound set to optimal + steps_delta. steps_delta = -1 yields the
/// tightest unsatisfiable instance; steps_delta = 0 the tightest
/// satisfiable one.
[[nodiscard]] BlocksWorldInstance blocks_world_random(unsigned num_blocks,
                                                      int steps_delta,
                                                      std::uint64_t seed);

/// SAT-planning encoding of blocks world, the domain of the paper's
/// `bw_large.d` row (from the AI planning community). The task is to
/// reverse a tower of `num_blocks` blocks within `steps` moves.
///
/// Linear encoding: fluents on(b, x, t) ("block b rests on x", x a block
/// or the table) for t in [0, steps], actions move(b, x, y, t) for t in
/// [0, steps), with preconditions (b on x, b clear, destination clear),
/// effects, explanatory frame axioms, at-most-one-action-per-step
/// exclusion, and exactly-one-position state axioms. Idle steps are
/// allowed, so satisfiability is monotone in `steps`.
///
/// Reversing a tower takes exactly num_blocks moves (every block's support
/// changes, so each must move at least once, and moving each exactly once
/// bottom-up succeeds). With fewer steps the formula is unsatisfiable —
/// and, as the paper observes for bw_large.d, with a small unsatisfiable
/// core, since the counting argument involves only a few fluents. With
/// enough steps it is satisfiable and the model decodes into a plan.
/// Equivalent to blocks_world() on the tower and its reversal.
[[nodiscard]] Formula blocks_world_reversal(unsigned num_blocks,
                                            unsigned steps);

/// The minimal number of moves needed to reverse a tower of `num_blocks`.
[[nodiscard]] constexpr unsigned blocks_world_min_steps(unsigned num_blocks) {
  return num_blocks;
}

}  // namespace satproof::encode
