// Ablation E: traceable SatELite-style preprocessing (subsumption,
// self-subsuming resolution, bounded variable elimination). BVE is itself
// resolution, so its resolvents join the same trace and the end-to-end
// proof still checks against the *original* formula — the preprocessor and
// the search look identical to the checker. This bench quantifies the
// formula shrinkage, the solve-time effect, and verifies (not times) that
// every preprocessed UNSAT trace still validates.

#include <iostream>

#include "src/checker/breadth_first.hpp"
#include "src/encode/suite.hpp"
#include "src/simplify/pipeline.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main() {
  using namespace satproof;

  util::Table table({"Instance", "Cls Before", "Cls After", "Vars Elim",
                     "Strengthened", "Solve Plain (s)", "Solve Pre (s)",
                     "Trace Checks"});

  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Standard)) {
    // Plain solve.
    double plain_secs = 0.0;
    {
      solver::Solver s;
      s.add_formula(inst.formula);
      util::Timer t;
      if (s.solve() != solver::SolveResult::Unsatisfiable) {
        std::cerr << "FATAL: " << inst.name << " not UNSAT\n";
        return 1;
      }
      plain_secs = t.elapsed_seconds();
    }

    // Preprocess + solve, with the trace checked afterwards.
    trace::MemoryTraceWriter w;
    util::Timer t;
    const simplify::SimplifiedSolveResult res =
        simplify::solve_simplified(inst.formula, {}, {}, &w);
    const double pre_secs = t.elapsed_seconds();
    if (res.result != solver::SolveResult::Unsatisfiable) {
      std::cerr << "FATAL: pipeline did not prove " << inst.name << "\n";
      return 1;
    }
    trace::MemoryTraceReader r(w.trace());
    const checker::CheckResult check =
        checker::check_breadth_first(inst.formula, r);
    if (!check.ok) {
      std::cerr << "FATAL: preprocessed trace failed to check on "
                << inst.name << ": " << check.error << "\n";
      return 1;
    }

    const auto& ps = res.preprocess_stats;
    const simplify::PreprocessResult shape =
        simplify::preprocess(inst.formula, {}, nullptr);
    table.add_row({inst.name, std::to_string(inst.formula.num_clauses()),
                   std::to_string(shape.clauses.size()),
                   std::to_string(ps.eliminated_vars),
                   std::to_string(ps.strengthened),
                   util::format_double(plain_secs, 3),
                   util::format_double(pre_secs, 3), "yes"});
  }

  std::cout << "Ablation E: traceable preprocessing (subsume / strengthen / "
               "eliminate)\n"
            << "(every preprocessed UNSAT trace re-checked against the "
               "original formula)\n\n"
            << table.to_string();
  return 0;
}
