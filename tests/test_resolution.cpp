// Unit and property tests for the checker's resolution kernel.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/checker/resolution.hpp"
#include "src/util/rng.hpp"

namespace satproof::checker {
namespace {

SortedClause C(std::initializer_list<int> dimacs) {
  std::vector<Lit> lits;
  for (const int d : dimacs) lits.push_back(Lit::from_dimacs(d));
  return canonicalize(lits);
}

TEST(Canonicalize, SortsAndDeduplicates) {
  const SortedClause c = C({3, -1, 3, 2, -1});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], Lit::neg(0));
  EXPECT_EQ(c[1], Lit::pos(1));
  EXPECT_EQ(c[2], Lit::pos(2));
}

TEST(IsTautology, DetectsBothPhases) {
  EXPECT_TRUE(is_tautology(C({1, -1, 2})));
  EXPECT_FALSE(is_tautology(C({1, 2, -3})));
  EXPECT_FALSE(is_tautology(C({})));
}

TEST(Resolve, TextbookExample) {
  // (x + y) (y' + z) resolves on y to (x + z) — the paper's own example.
  SortedClause out;
  const auto r = resolve(C({1, 2}), C({-2, 3}), out);
  EXPECT_EQ(r.status, ResolveStatus::Ok);
  EXPECT_EQ(r.pivot, 1u);
  EXPECT_EQ(out, C({1, 3}));
}

TEST(Resolve, SharedSamePhaseLiteralsMergeOnce) {
  SortedClause out;
  const auto r = resolve(C({1, 2, 3}), C({-1, 2, 4}), out);
  EXPECT_EQ(r.status, ResolveStatus::Ok);
  EXPECT_EQ(out, C({2, 3, 4}));
}

TEST(Resolve, UnitClausesGiveEmptyResolvent) {
  SortedClause out;
  const auto r = resolve(C({5}), C({-5}), out);
  EXPECT_EQ(r.status, ResolveStatus::Ok);
  EXPECT_TRUE(out.empty());
}

TEST(Resolve, NoClashRejected) {
  SortedClause out;
  EXPECT_EQ(resolve(C({1, 2}), C({2, 3}), out).status,
            ResolveStatus::NoClash);
  EXPECT_EQ(resolve(C({1}), C({2}), out).status, ResolveStatus::NoClash);
}

TEST(Resolve, MultiClashRejected) {
  SortedClause out;
  EXPECT_EQ(resolve(C({1, 2}), C({-1, -2}), out).status,
            ResolveStatus::MultiClash);
}

TEST(Resolve, TautologicalSideRejected) {
  // b contains the pivot in both phases; resolving "through" it would
  // produce a clause stronger than implied (soundness trap).
  SortedClause out;
  const SortedClause a = C({-1});
  SortedClause b = C({1, 2});
  b.insert(b.begin() + 1, Lit::neg(0));  // force {x0, ~x0, x1} unsorted-safe
  std::sort(b.begin(), b.end());
  EXPECT_EQ(resolve(a, b, out).status, ResolveStatus::MultiClash);
}

TEST(ChainResolver, MatchesSingleResolve) {
  ChainResolver chain;
  chain.start(C({1, 2}));
  const auto r = chain.step(C({-2, 3}));
  EXPECT_EQ(r.status, ResolveStatus::Ok);
  auto got = chain.take();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, C({1, 3}));
}

TEST(ChainResolver, FoldsLongChain) {
  // (a+b)(~b+c)(~c+d)(~d) -> (a)
  ChainResolver chain;
  chain.start(C({1, 2}));
  EXPECT_EQ(chain.step(C({-2, 3})).status, ResolveStatus::Ok);
  EXPECT_EQ(chain.step(C({-3, 4})).status, ResolveStatus::Ok);
  EXPECT_EQ(chain.step(C({-4})).status, ResolveStatus::Ok);
  auto got = chain.take();
  EXPECT_EQ(got, C({1}));
}

TEST(ChainResolver, RejectsNoClashAndMultiClash) {
  ChainResolver chain;
  chain.start(C({1, 2}));
  EXPECT_EQ(chain.step(C({2, 3})).status, ResolveStatus::NoClash);
  chain.start(C({1, 2}));
  EXPECT_EQ(chain.step(C({-1, -2})).status, ResolveStatus::MultiClash);
}

TEST(ChainResolver, RejectsTautologicalNext) {
  ChainResolver chain;
  chain.start(C({-1}));
  SortedClause taut = C({1, 2});
  taut.push_back(Lit::neg(0));
  EXPECT_EQ(chain.step(taut).status, ResolveStatus::MultiClash);
}

TEST(ChainResolver, ReusableAcrossChains) {
  ChainResolver chain;
  chain.start(C({1, 2}));
  ASSERT_EQ(chain.step(C({-2})).status, ResolveStatus::Ok);
  EXPECT_EQ(chain.take(), C({1}));
  // Second, unrelated chain on the same object.
  chain.start(C({-3, 4}));
  ASSERT_EQ(chain.step(C({3, 4})).status, ResolveStatus::Ok);
  EXPECT_EQ(chain.take(), C({4}));
}

TEST(ChainResolver, EmptyAfterStartWithEmpty) {
  ChainResolver chain;
  chain.start(SortedClause{});
  EXPECT_TRUE(chain.lits().empty());
}

/// Property sweep: ChainResolver agrees with the reference sorted-merge
/// resolve() on randomly generated valid chains.
class ChainEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainEquivalence, AgreesWithReferenceResolve) {
  util::Rng rng(GetParam());
  const unsigned num_vars = 30;

  for (int round = 0; round < 50; ++round) {
    // Start from a random clause; repeatedly resolve with clauses
    // constructed to clash on exactly one variable.
    SortedClause current;
    {
      std::vector<Lit> lits;
      const unsigned len = 2 + static_cast<unsigned>(rng.next_below(6));
      for (unsigned i = 0; i < len; ++i) {
        lits.push_back(Lit(static_cast<Var>(rng.next_below(num_vars)),
                           rng.next_bool()));
      }
      current = canonicalize(lits);
      if (is_tautology(current)) continue;
    }

    ChainResolver chain;
    chain.start(current);

    for (int step = 0; step < 10 && !current.empty(); ++step) {
      // Pick a pivot from the current clause and build a partner clause
      // containing its negation plus fresh literals that do not clash.
      const Lit pivot = current[rng.next_below(current.size())];
      std::vector<Lit> partner{~pivot};
      for (unsigned i = 0; i < 4; ++i) {
        const Var v = static_cast<Var>(rng.next_below(num_vars));
        if (v == pivot.var()) continue;
        // Avoid introducing a second clash with the current clause.
        const Lit cand(v, rng.next_bool());
        if (std::find(current.begin(), current.end(), ~cand) !=
            current.end()) {
          partner.push_back(~cand);  // same phase as current: no clash
        } else {
          partner.push_back(cand);
        }
      }
      const SortedClause next = canonicalize(partner);
      if (is_tautology(next)) break;

      SortedClause ref_out;
      const auto ref = resolve(current, next, ref_out);
      const auto fast = chain.step(next);
      ASSERT_EQ(ref.status, fast.status);
      if (ref.status != ResolveStatus::Ok) break;
      ASSERT_EQ(ref.pivot, fast.pivot);

      std::vector<Lit> fast_lits(chain.lits().begin(), chain.lits().end());
      std::sort(fast_lits.begin(), fast_lits.end());
      ASSERT_EQ(fast_lits, ref_out);
      current = ref_out;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace satproof::checker
