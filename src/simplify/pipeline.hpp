#pragma once

#include "src/cnf/model.hpp"
#include "src/simplify/preprocessor.hpp"
#include "src/solver/options.hpp"

namespace satproof::simplify {

/// Outcome of the preprocess-then-solve pipeline.
struct SimplifiedSolveResult {
  solver::SolveResult result = solver::SolveResult::Unknown;
  /// On Satisfiable: a model of the *original* formula (eliminated
  /// variables reconstructed).
  Model model;
  PreprocessStats preprocess_stats;
  /// Search statistics (all zero when preprocessing alone settled it).
  solver::SolverStats solver_stats;
};

/// Preprocesses `f` and solves the simplified problem, producing — when a
/// trace writer is attached — a single seamless trace that checks against
/// the *original* formula: preprocessing resolvents and learned clauses
/// are both just derivations to the checker. On SAT, the model is
/// reconstructed through the eliminations so it satisfies the original
/// formula.
[[nodiscard]] SimplifiedSolveResult solve_simplified(
    const Formula& f, const solver::SolverOptions& solver_options = {},
    const PreprocessOptions& preprocess_options = {},
    trace::TraceWriter* writer = nullptr);

}  // namespace satproof::simplify
