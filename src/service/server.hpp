#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/service/job_queue.hpp"
#include "src/service/metrics.hpp"
#include "src/service/protocol.hpp"
#include "src/util/arena.hpp"
#include "src/util/epoll.hpp"
#include "src/util/socket.hpp"

namespace satproof::service {

struct ServerOptions {
  /// Unix-domain socket path ("" = no unix listener). First-class
  /// transport: no TCP stack in the loop, filesystem permissions for
  /// access control.
  std::string unix_socket_path;
  /// Listen on 127.0.0.1 TCP as well (never on other interfaces).
  bool enable_tcp = false;
  std::uint16_t tcp_port = 0;  ///< 0 = ephemeral (see tcp_port())

  unsigned workers = 0;  ///< checker worker threads (0 = hardware threads)
  std::size_t queue_capacity = 64;  ///< pending jobs before BUSY
  std::uint32_t default_timeout_ms = 0;  ///< per-job budget; 0 = unlimited
  /// Idle-connection guard: a peer that stalls mid-frame (or goes silent)
  /// is dropped after this long instead of holding a connection slot
  /// forever. 0 disables.
  std::uint32_t idle_timeout_ms = 30000;
  /// Jobs whose wall time exceeds this dump their span tree to stderr
  /// (one block per slow job) and bump the slow-job counter. 0 disables
  /// per-job span collection entirely.
  std::uint32_t slow_job_ms = 0;
  /// Upload size (declared, or measured when undeclared) at which a job
  /// is scheduled on the bulk lane instead of the fast lane.
  std::uint64_t bulk_threshold_bytes = kBulkLaneThresholdBytes;
  /// Run the trusted kernel over every certificate emitted for a certify
  /// job before reporting success (`satproof serve --certify`). A kernel
  /// REJECT turns the job into an error outcome — the service never ships
  /// a certificate it could not verify itself.
  bool certify = false;
  /// Per-worker checker memory cap in bytes (`satproof serve
  /// --mem-limit`). Passed to run_check for every job: df/hybrid requests
  /// whose estimated peak exceeds it are downgraded to the cheapest
  /// backend that fits (ultimately the window-shifting backend, whose
  /// resident footprint is budget-bounded), so one multi-GB upload cannot
  /// OOM a worker. 0 = no cap.
  std::size_t mem_limit_bytes = 0;
};

/// The satproofd daemon: accepts proof-checking jobs over the framed
/// protocol (src/service/protocol.hpp), streams uploads to temp files,
/// schedules checking runs on a sharded work-stealing worker pool behind
/// a bounded two-lane queue, and serves live metrics.
///
/// Threading: ONE I/O thread runs an EventPoller (epoll on Linux) over
/// the listeners, a drain pipe, a completion pipe, and every live
/// connection — all non-blocking, so a slow or stalled uploader costs a
/// buffer, never a thread, and dead connections are reaped the moment
/// they close. N worker threads (one queue shard + one recycled
/// ClauseArena each) pull jobs fast-lane-first from their own shard and
/// steal from others when idle; finished results travel back to the I/O
/// thread over the completion pipe for non-blocking delivery.
/// Ingestion never buffers a whole trace in memory — upload chunks go
/// straight to disk, and the checkers then read the file through the mmap
/// ByteSource path.
///
/// Shutdown is a *drain*: request_drain() (or a SIGTERM handler calling
/// notify_drain_from_signal()) stops accepting connections and jobs,
/// lets queued and running jobs finish, delivers their results to waiting
/// clients, then releases serve_forever(). Nothing is killed mid-check.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the I/O and worker threads. Throws
  /// std::runtime_error when no transport is configured or a bind fails.
  void start();

  /// Actual TCP port (resolves an ephemeral request); 0 when TCP is off.
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

  /// Worker threads actually running (resolves workers == 0).
  [[nodiscard]] unsigned worker_count() const { return worker_count_; }

  /// Async-signal-safe drain trigger for SIGTERM/SIGINT handlers: only
  /// writes one byte to a pipe.
  void notify_drain_from_signal() noexcept { wake_pipe_.notify(); }

  /// Thread-safe drain trigger.
  void request_drain() { wake_pipe_.notify(); }

  /// Blocks until a drain completes (all jobs finished, all connections
  /// closed, listeners down).
  void wait_until_drained();

  /// request_drain() + wait_until_drained().
  void drain_and_wait();

  /// Metrics snapshot (same JSON as the protocol's stats reply).
  [[nodiscard]] std::string metrics_json() const;

  /// The snapshot in Prometheus text exposition format (the protocol's
  /// STATS_PROM reply).
  [[nodiscard]] std::string metrics_prometheus() const;

  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  struct Connection;  // I/O-thread-private; defined in server.cpp

  /// Result frame (or empty wakeup for a no-wait job) travelling from a
  /// worker back to the I/O thread.
  struct CompletionMsg {
    std::uint64_t conn_key = 0;
    std::vector<std::uint8_t> frame;  ///< full wire frame; empty = no reply
  };

  void io_loop();
  void accept_ready(util::Socket& listener);
  void on_connection_event(const util::PollEvent& ev, std::uint64_t now_us);
  /// Returns false when the connection must close (after flushing).
  bool handle_frame(Connection& conn, Frame& frame);
  void process_buffered_frames(Connection& conn);
  void queue_output(Connection& conn, FrameTag tag,
                    std::span<const std::uint8_t> payload);
  void flush_output(Connection& conn);
  void destroy_connection(std::uint64_t key);
  void deliver_completions();
  void sweep_idle(std::uint64_t now_us);
  void begin_drain();
  [[nodiscard]] bool drain_complete() const;

  void worker_main(unsigned worker);
  void execute_job(QueuedJob job, util::ClauseArena& arena);
  [[nodiscard]] std::vector<ShardedJobQueue::ShardSnapshot>
  shard_snapshots() const;

  ServerOptions options_;
  unsigned worker_count_ = 1;
  util::Socket unix_listener_;
  util::Socket tcp_listener_;
  std::uint16_t tcp_port_ = 0;
  util::WakePipe wake_pipe_;        ///< drain trigger (async-signal-safe)
  util::WakePipe completion_pipe_;  ///< worker -> I/O thread wakeup

  Metrics metrics_;
  ShardedJobQueue queue_;
  std::atomic<std::size_t> running_jobs_{0};
  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<bool> draining_{false};

  /// Completion mailbox: workers push under the mutex and notify the
  /// completion pipe; the I/O thread swaps the vector out.
  std::mutex completions_mutex_;
  std::vector<CompletionMsg> completions_;

  // --- I/O-thread-only state (no locks: one owner) ----------------------
  std::unique_ptr<util::EventPoller> poller_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_key_ = 16;  ///< 0-3 are listener/pipe keys
  std::size_t pending_jobs_ = 0;  ///< admitted, completion not yet handled

  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  bool started_ = false;
  bool drained_ = false;

  std::vector<std::jthread> workers_;
  std::jthread io_thread_;
};

}  // namespace satproof::service
