#include "src/proof/proof_dag.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "src/checker/common.hpp"

namespace satproof::proof {

namespace {

/// DFS-based extraction mirroring the depth-first checker's recursive
/// build, with per-node bookkeeping (literals, depth, topological order).
class Extractor {
 public:
  Extractor(const Formula& f, trace::TraceReader& reader)
      : formula_(&f), reader_(&reader), level0_(reader.num_vars()) {}

  ProofDag run() {
    checker::check_header(*formula_, reader_->num_vars(),
                          reader_->num_original());
    load_trace();
    if (!final_id_.has_value()) {
      throw ProofError(
          "trace has no final conflicting clause; no proof to extract");
    }

    ProofDag dag;
    dag.num_original = reader_->num_original();

    // Build everything reachable from the final conflict, then replay the
    // empty-clause derivation and record it as the root node.
    build(*final_id_);

    ProofDag::Node root;
    root.sources.push_back(*final_id_);
    checker::CheckStats scratch_stats;
    const checker::ClauseFetcher fetch =
        [this, &root](ClauseId id) -> const checker::SortedClause& {
      const checker::SortedClause& c = build(id);
      // derive_final_clause fetches the final clause first, then one
      // antecedent per step, in order — exactly the root's source list.
      if (!root.sources.empty() && root.sources.back() != id) {
        root.sources.push_back(id);
      }
      return c;
    };
    checker::SortedClause remaining =
        checker::derive_final_clause(*final_id_, fetch, level0_,
                                     scratch_stats);
    if (!remaining.empty()) {
      checker::validate_assumption_clause(remaining, level0_);
    }
    root.lits = std::move(remaining);

    root.id = next_free_id();
    root.depth = 0;
    for (const ClauseId s : root.sources) {
      root.depth = std::max(root.depth, depth_of(s) + 1);
    }

    // Emit nodes in topological (build) order, root last.
    dag.nodes.reserve(order_.size() + 1);
    for (const ClauseId id : order_) {
      ProofDag::Node n;
      n.id = id;
      n.lits = memo_.at(id);
      if (const auto it = derivations_.find(id); it != derivations_.end()) {
        n.sources = it->second;
      }
      n.depth = depth_.at(id);
      dag.nodes.push_back(std::move(n));
    }
    dag.root_id = root.id;
    dag.nodes.push_back(std::move(root));
    return dag;
  }

 private:
  [[nodiscard]] ClauseId num_original() const {
    return reader_->num_original();
  }

  [[nodiscard]] ClauseId next_free_id() const {
    ClauseId next = num_original();
    for (const auto& [id, sources] : derivations_) {
      next = std::max(next, id + 1);
    }
    return next;
  }

  [[nodiscard]] unsigned depth_of(ClauseId id) const { return depth_.at(id); }

  void load_trace() {
    reader_->rewind();
    trace::Record rec;
    bool ended = false;
    while (!ended && reader_->next(rec)) {
      switch (rec.kind) {
        case trace::RecordKind::Derivation: {
          if (rec.id < num_original() || rec.sources.size() < 2) {
            throw ProofError("malformed derivation record " +
                             std::to_string(rec.id));
          }
          for (const ClauseId s : rec.sources) {
            if (s >= rec.id) {
              throw ProofError("derivation " + std::to_string(rec.id) +
                               " references a non-preceding source");
            }
          }
          if (!derivations_.emplace(rec.id, std::move(rec.sources)).second) {
            throw ProofError("clause " + std::to_string(rec.id) +
                             " derived twice");
          }
          break;
        }
        case trace::RecordKind::FinalConflict:
          final_id_ = rec.id;
          break;
        case trace::RecordKind::Level0:
          level0_.add(rec.var, rec.value, rec.antecedent);
          break;
        case trace::RecordKind::Assumption:
          level0_.add_assumption(rec.var, rec.value);
          break;
        case trace::RecordKind::End:
          ended = true;
          break;
      }
    }
    if (!ended) throw ProofError("trace truncated");
  }

  const checker::SortedClause& build(ClauseId id) {
    if (const auto it = memo_.find(id); it != memo_.end()) return it->second;
    if (id < num_original()) {
      checker::SortedClause canon =
          checker::canonicalize(formula_->clause(id));
      if (checker::is_tautology(canon)) {
        throw ProofError("original clause " + std::to_string(id) +
                         " is tautological");
      }
      depth_[id] = 0;
      order_.push_back(id);
      return memo_.emplace(id, std::move(canon)).first->second;
    }

    struct Frame {
      ClauseId id;
      const std::vector<ClauseId>* sources;
      std::size_t scan = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({id, &sources_of(id)});
    while (!stack.empty()) {
      Frame& f = stack.back();
      bool descended = false;
      while (f.scan < f.sources->size()) {
        const ClauseId s = (*f.sources)[f.scan];
        if (memo_.contains(s) || s < num_original()) {
          if (!memo_.contains(s)) build(s);  // original leaf
          ++f.scan;
          continue;
        }
        stack.push_back({s, &sources_of(s)});
        descended = true;
        break;
      }
      if (descended) continue;
      fold(f.id, *f.sources);
      stack.pop_back();
    }
    return memo_.at(id);
  }

  const std::vector<ClauseId>& sources_of(ClauseId id) {
    const auto it = derivations_.find(id);
    if (it == derivations_.end()) {
      throw ProofError("clause " + std::to_string(id) +
                       " is referenced but never derived");
    }
    return it->second;
  }

  void fold(ClauseId id, const std::vector<ClauseId>& sources) {
    chain_.start(memo_.at(sources[0]));
    unsigned depth = depth_.at(sources[0]);
    for (std::size_t i = 1; i < sources.size(); ++i) {
      const auto r = chain_.step(memo_.at(sources[i]));
      if (r.status != checker::ResolveStatus::Ok) {
        throw ProofError("invalid resolution while deriving clause " +
                         std::to_string(id));
      }
      depth = std::max(depth, depth_.at(sources[i]));
    }
    checker::SortedClause derived = chain_.take();
    std::sort(derived.begin(), derived.end());
    memo_.emplace(id, std::move(derived));
    depth_[id] = depth + 1;
    order_.push_back(id);
  }

  const Formula* formula_;
  trace::TraceReader* reader_;
  checker::Level0Table level0_;
  std::optional<ClauseId> final_id_;
  std::unordered_map<ClauseId, std::vector<ClauseId>> derivations_;
  std::unordered_map<ClauseId, checker::SortedClause> memo_;
  std::unordered_map<ClauseId, unsigned> depth_;
  std::vector<ClauseId> order_;
  checker::ChainResolver chain_;
};

}  // namespace

std::size_t ProofDag::index_of(ClauseId id) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].id == id) return i;
  }
  return ~std::size_t{0};
}

ProofStats compute_stats(const ProofDag& dag) {
  ProofStats st;
  std::size_t derived_width_sum = 0;
  for (const auto& n : dag.nodes) {
    st.max_clause_width = std::max(st.max_clause_width, n.lits.size());
    st.depth = std::max(st.depth, n.depth);
    if (n.sources.empty()) {
      ++st.leaves;
    } else {
      ++st.derived;
      st.resolutions += n.sources.size() - 1;
      derived_width_sum += n.lits.size();
    }
  }
  st.avg_clause_width =
      st.derived == 0 ? 0.0
                      : static_cast<double>(derived_width_sum) /
                            static_cast<double>(st.derived);
  return st;
}

ProofDag extract_proof(const Formula& f, trace::TraceReader& reader) {
  try {
    return Extractor(f, reader).run();
  } catch (const checker::CheckFailure& e) {
    throw ProofError(e.what());
  } catch (const std::runtime_error& e) {
    throw ProofError(e.what());
  }
}

}  // namespace satproof::proof
