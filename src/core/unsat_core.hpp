#pragma once

#include <string>
#include <vector>

#include "src/cnf/formula.hpp"
#include "src/solver/options.hpp"

namespace satproof::core {

/// Why a core extraction did not produce a core.
enum class CoreStatus : std::uint8_t {
  Ok,           ///< core extracted and validated
  Satisfiable,  ///< the input formula is satisfiable — no core exists
  Unknown,      ///< the solver's conflict budget ran out
  CheckFailed,  ///< the proof trace did not validate (solver bug)
};

/// Result of one solve + depth-first-check round on a formula.
struct CoreExtraction {
  /// False if the solve did not return UNSAT or the check failed; the
  /// diagnostic is in `error` and the reason in `status`.
  bool ok = false;
  CoreStatus status = CoreStatus::CheckFailed;
  std::string error;
  /// IDs (in the input formula's numbering) of the original clauses the
  /// resolution proof touches.
  std::vector<ClauseId> core_ids;
  /// The core as a formula (same variable numbering as the input).
  Formula core;
  /// Distinct variables occurring in the core (the paper's Table 3 counts
  /// involved variables, not declared ones).
  std::size_t num_vars_used = 0;
};

/// Solves `f`, checks the proof with the depth-first checker, and returns
/// the set of original clauses involved in the proof — the unsatisfiable
/// core the paper obtains "as a by-product" of depth-first checking
/// (Section 3.2). `f` must be unsatisfiable.
[[nodiscard]] CoreExtraction extract_core(const Formula& f,
                                          const solver::SolverOptions& opts = {});

/// Result of the iterative core-reduction procedure of Table 3.
struct CoreIteration {
  bool ok = false;
  std::string error;

  /// Clause/variable counts per step. steps[0] describes the input formula;
  /// steps[i] (i >= 1) describes the core after the i-th extraction.
  struct Step {
    std::size_t num_clauses = 0;
    std::size_t num_vars = 0;
  };
  std::vector<Step> steps;

  /// Number of extraction rounds actually performed.
  std::size_t iterations = 0;

  /// True when a fixed point was reached: the last proof used *every*
  /// clause of its input, so further iteration cannot shrink the core.
  bool fixed_point = false;

  /// The final (smallest) core.
  Formula final_core;
};

/// Iterates core extraction: feed the core back to the solver, re-check,
/// extract again — "after several iterations, the number may reach a fixed
/// point, so that all the clauses are needed for the proof" (Section 4).
/// Stops at the fixed point or after `max_iterations` rounds, whichever
/// comes first (the paper measured up to 30).
[[nodiscard]] CoreIteration iterate_core(const Formula& f,
                                         std::size_t max_iterations = 30,
                                         const solver::SolverOptions& opts = {});

/// Result of minimal-core computation.
struct MinimalCore {
  bool ok = false;
  std::string error;
  /// IDs (input formula numbering) of a *minimal* unsatisfiable subset:
  /// removing any single clause makes it satisfiable.
  std::vector<ClauseId> core_ids;
  Formula core;
  /// Number of solver invocations spent.
  std::size_t solver_calls = 0;
};

/// Computes a minimal unsatisfiable subformula by destructive testing on
/// top of proof-based extraction — the "small unsatisfiable subformulae"
/// application the paper cites (Bruni & Sassano, SAT 2001). The fixed
/// point of iterate_core() only guarantees every clause appears in *one*
/// particular proof; this routine guarantees set-minimality: each
/// candidate clause is dropped, the remainder re-solved, and kept out
/// whenever unsatisfiability survives (shrinking via the new proof's core
/// each time). Cost: one solve per core clause in the worst case — use on
/// formulas whose extracted core is already small.
[[nodiscard]] MinimalCore minimal_core(const Formula& f,
                                       const solver::SolverOptions& opts = {});

}  // namespace satproof::core
