
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cnf/dimacs.cpp" "src/cnf/CMakeFiles/satproof_cnf.dir/dimacs.cpp.o" "gcc" "src/cnf/CMakeFiles/satproof_cnf.dir/dimacs.cpp.o.d"
  "/root/repo/src/cnf/formula.cpp" "src/cnf/CMakeFiles/satproof_cnf.dir/formula.cpp.o" "gcc" "src/cnf/CMakeFiles/satproof_cnf.dir/formula.cpp.o.d"
  "/root/repo/src/cnf/model.cpp" "src/cnf/CMakeFiles/satproof_cnf.dir/model.cpp.o" "gcc" "src/cnf/CMakeFiles/satproof_cnf.dir/model.cpp.o.d"
  "/root/repo/src/cnf/types.cpp" "src/cnf/CMakeFiles/satproof_cnf.dir/types.cpp.o" "gcc" "src/cnf/CMakeFiles/satproof_cnf.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/satproof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
