// Compile-level test: the umbrella header is self-contained and the whole
// public surface coexists in one translation unit.

#include "src/satproof.hpp"

#include <gtest/gtest.h>

namespace satproof {
namespace {

TEST(Umbrella, EndToEndThroughUmbrellaHeader) {
  const Formula f = encode::pigeonhole(3);
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader r(t);
  EXPECT_TRUE(checker::check_depth_first(f, r).ok);
}

}  // namespace
}  // namespace satproof
