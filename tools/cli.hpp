#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace satproof::cli {

/// Exit codes of the `solve` command, following the SAT-competition
/// convention.
inline constexpr int kExitSat = 10;
inline constexpr int kExitUnsat = 20;
inline constexpr int kExitUnknown = 0;
inline constexpr int kExitError = 1;

/// Runs the satproof command-line interface.
///
///     satproof solve <file.cnf> [--trace FILE] [--binary] [--check df|bf|both]
///                    [--core FILE] [--minimal-core] [--proof-dot FILE]
///                    [--tracecheck FILE] [--stats] [--model]
///                    [--minimize] [--luby] [--no-restarts] [--no-deletion]
///                    [--budget N]
///     satproof check <file.cnf> <trace-file> [--checker=MODE] [--stats[=json]]
///     satproof serve (--socket PATH | --tcp PORT) [--jobs N] [--queue N]
///     satproof submit <file.cnf> <trace-file> (--socket PATH | --tcp PORT)
///                     [--backend=MODE] [--wait]
///     satproof stats (--socket PATH | --tcp PORT)
///     satproof core  <file.cnf> [--minimal] [--iterations N] [-o FILE]
///     satproof gen   <family> <params...> -o FILE
///     satproof help
///
/// `args` excludes the program name. Output goes to `out`, diagnostics to
/// `err`. Returns a process exit code (see the kExit constants; non-solve
/// commands return 0 on success, 1 on failure).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace satproof::cli
