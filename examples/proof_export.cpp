// Exporting proofs for third-party consumption — the strongest form of the
// paper's "independent checker" argument is letting *other people's*
// checkers validate the proof too.
//
// Solves a small instance, extracts the resolution DAG, prints its shape,
// and writes both a Graphviz rendering (proof.dot) and a TraceCheck-style
// proof file (proof.trace) into the current directory.

#include <fstream>
#include <iostream>

#include "src/encode/parity.hpp"
#include "src/proof/export.hpp"
#include "src/proof/proof_dag.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"

int main() {
  using namespace satproof;

  const Formula f = encode::xor_chain(8, 123);
  std::cout << "Instance: 8-variable XOR cycle with odd parity ("
            << f.num_clauses() << " clauses, UNSAT)\n";

  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  if (s.solve() != solver::SolveResult::Unsatisfiable) {
    std::cout << "unexpected SAT\n";
    return 1;
  }

  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader reader(t);
  const proof::ProofDag dag = proof::extract_proof(f, reader);
  const proof::ProofStats st = proof::compute_stats(dag);
  std::cout << "Proof DAG: " << st.leaves << " leaves (of "
            << f.num_clauses() << " original clauses), " << st.derived
            << " derived clauses, depth " << st.depth << ", "
            << st.resolutions << " resolutions\n";

  {
    std::ofstream dot("proof.dot");
    proof::write_dot(dot, dag);
  }
  {
    std::ofstream tc("proof.trace");
    proof::write_tracecheck(tc, dag);
  }
  std::cout << "Wrote proof.dot (render: dot -Tpng proof.dot -o proof.png)\n"
            << "Wrote proof.trace (TraceCheck-style: <id> <lits> 0 <antes> 0)"
            << "\n";
  return 0;
}
