#pragma once

#include <string>
#include <vector>

#include "src/cnf/formula.hpp"

namespace satproof::encode {

/// One benchmark instance of the reproduction suite.
struct NamedInstance {
  std::string name;    ///< short identifier, printed in the table rows
  std::string family;  ///< problem domain, mirroring Table 1's provenance
  Formula formula;     ///< the CNF; every suite instance is unsatisfiable
  /// Include in the Table 3 core-iteration bench. The paper likewise drops
  /// its hardest rows (6pipe, 7pipe) from Table 3; 30 re-solves of the
  /// hardest instances would dominate the harness runtime.
  bool core_iteration = true;
};

/// Size of the generated suite.
enum class SuiteScale {
  Small,     ///< seconds in total; used by the test sweeps
  Standard,  ///< the benchmark suite for the Table 1-3 reproductions
};

/// The benchmark suite standing in for the paper's Table 1 instances. Same
/// domain mix — microprocessor/equivalence miters, bounded model checking,
/// FPGA routing, AI planning, plus the classic hard families — generated at
/// laptop scale; every instance is unsatisfiable by construction.
[[nodiscard]] std::vector<NamedInstance> unsat_suite(SuiteScale scale);

}  // namespace satproof::encode
