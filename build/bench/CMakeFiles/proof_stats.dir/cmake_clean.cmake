file(REMOVE_RECURSE
  "CMakeFiles/proof_stats.dir/proof_stats.cpp.o"
  "CMakeFiles/proof_stats.dir/proof_stats.cpp.o.d"
  "proof_stats"
  "proof_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
