# Empty dependencies file for interpolation_demo.
# This may be replaced when dependencies are built.
