// Unsatisfiable cores as a debugging aid — the Section 4 application of
// the paper: "In FPGA routing, an unsatisfiable instance means that the
// channels are un-routable. The unsatisfiable core can help the designers
// concentrate on the reasons (constraints) that are responsible for the
// routing failure."
//
// A 14-net channel with 5 tracks is generated with a congestion hot spot.
// The iterated core shrinks the 1000-ish-clause instance to the handful of
// constraints naming the 6 nets that actually over-subscribe the channel.

#include <iostream>
#include <set>

#include "src/core/unsat_core.hpp"
#include "src/encode/fpga_routing.hpp"

int main() {
  using namespace satproof;

  constexpr unsigned kNets = 14;
  constexpr unsigned kTracks = 5;
  const Formula f = encode::fpga_routing(kNets, kTracks, 20, 4242);
  std::cout << "Channel routing instance: " << kNets << " nets, " << kTracks
            << " tracks -> " << f.num_vars() << " vars, " << f.num_clauses()
            << " clauses\n";

  const core::CoreIteration it = core::iterate_core(f, 30);
  if (!it.ok) {
    std::cout << "core extraction failed: " << it.error << "\n";
    return 1;
  }

  std::cout << "Core sizes per iteration:";
  for (const auto& step : it.steps) std::cout << " " << step.num_clauses;
  std::cout << (it.fixed_point ? " (fixed point)" : " (iteration cap)")
            << "\n";

  // Map the core's variables back to nets: variable of net i, track t is
  // i * kTracks + t.
  std::set<unsigned> guilty_nets;
  for (ClauseId id = 0; id < it.final_core.num_clauses(); ++id) {
    for (const Lit lit : it.final_core.clause(id)) {
      guilty_nets.insert(lit.var() / kTracks);
    }
  }
  std::cout << "The routing failure involves " << guilty_nets.size()
            << " of " << kNets << " nets:";
  for (const unsigned net : guilty_nets) std::cout << " n" << net;
  std::cout << "\n(" << kTracks + 1
            << " nets crossing one column cannot share " << kTracks
            << " tracks -- the core isolates the congestion for the "
               "designer.)\n";
  return 0;
}
