file(REMOVE_RECURSE
  "CMakeFiles/ablation_preprocessing.dir/ablation_preprocessing.cpp.o"
  "CMakeFiles/ablation_preprocessing.dir/ablation_preprocessing.cpp.o.d"
  "ablation_preprocessing"
  "ablation_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
