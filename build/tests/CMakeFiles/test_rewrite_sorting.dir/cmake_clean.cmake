file(REMOVE_RECURSE
  "CMakeFiles/test_rewrite_sorting.dir/test_rewrite_sorting.cpp.o"
  "CMakeFiles/test_rewrite_sorting.dir/test_rewrite_sorting.cpp.o.d"
  "test_rewrite_sorting"
  "test_rewrite_sorting.pdb"
  "test_rewrite_sorting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewrite_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
