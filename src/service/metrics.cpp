#include "src/service/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/metrics.hpp"
#include "src/util/json.hpp"

namespace satproof::service {

void LatencyHistogram::record(double seconds) {
  const double us = std::max(seconds, 0.0) * 1e6;
  std::size_t bucket = 0;
  if (us >= 1.0) {
    bucket = static_cast<std::size_t>(std::log2(us));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  ++buckets_[bucket];
  ++count_;
  max_ms_ = std::max(max_ms_, seconds * 1e3);
}

double LatencyHistogram::percentile_ms(double p) const {
  if (count_ == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(std::clamp(p, 0.0, 100.0) / 100.0 *
                static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank && rank > 0) {
      // Upper bound of bucket i: 2^(i+1) microseconds.
      return std::ldexp(1.0, static_cast<int>(i) + 1) / 1e3;
    }
  }
  return max_ms_;
}

void Metrics::on_connection() {
  std::lock_guard lock(mutex_);
  ++connections_;
}

void Metrics::on_malformed_frame() {
  std::lock_guard lock(mutex_);
  ++malformed_frames_;
}

void Metrics::on_accepted() {
  std::lock_guard lock(mutex_);
  ++accepted_;
}

void Metrics::on_rejected_busy() {
  std::lock_guard lock(mutex_);
  ++rejected_busy_;
}

void Metrics::on_completed(Backend backend, double seconds, bool ok,
                           std::size_t arena_peak_bytes) {
  std::lock_guard lock(mutex_);
  ++completed_;
  if (!ok) ++failed_;
  arena_peak_bytes_ = std::max(arena_peak_bytes_, arena_peak_bytes);
  auto& bc = backends_[static_cast<std::size_t>(backend)];
  ++bc.completed;
  if (!ok) ++bc.failed;
  bc.latency.record(seconds);
}

void Metrics::on_timeout(Backend backend) {
  std::lock_guard lock(mutex_);
  ++timed_out_;
  ++backends_[static_cast<std::size_t>(backend)].timed_out;
}

void Metrics::on_slow_job() {
  std::lock_guard lock(mutex_);
  ++slow_jobs_;
}

void Metrics::on_certified(bool ok) {
  std::lock_guard lock(mutex_);
  if (ok) {
    ++certified_;
  } else {
    ++certify_failed_;
  }
}

std::string Metrics::to_json(
    std::size_t queue_depth, std::size_t queue_capacity,
    std::size_t running_jobs,
    const std::vector<ShardedJobQueue::ShardSnapshot>& shards) const {
  std::lock_guard lock(mutex_);
  util::JsonWriter w;
  w.begin_object();

  w.key("jobs");
  w.begin_object();
  w.key("accepted");
  w.value(accepted_);
  w.key("rejected_busy");
  w.value(rejected_busy_);
  w.key("completed");
  w.value(completed_);
  w.key("failed");
  w.value(failed_);
  w.key("timed_out");
  w.value(timed_out_);
  w.key("slow");
  w.value(slow_jobs_);
  w.key("certified");
  w.value(certified_);
  w.key("certify_failed");
  w.value(certify_failed_);
  w.end_object();

  w.key("queue");
  w.begin_object();
  w.key("depth");
  w.value(static_cast<std::uint64_t>(queue_depth));
  w.key("capacity");
  w.value(static_cast<std::uint64_t>(queue_capacity));
  w.key("running");
  w.value(static_cast<std::uint64_t>(running_jobs));
  w.end_object();

  w.key("workers");
  w.begin_object();
  w.key("count");
  w.value(static_cast<std::uint64_t>(shards.size()));
  w.key("shards");
  w.begin_array();
  for (const auto& s : shards) {
    w.begin_object();
    w.key("depth_fast");
    w.value(static_cast<std::uint64_t>(s.depth_fast));
    w.key("depth_bulk");
    w.value(static_cast<std::uint64_t>(s.depth_bulk));
    w.key("enqueued_fast");
    w.value(s.enqueued_fast);
    w.key("enqueued_bulk");
    w.value(s.enqueued_bulk);
    w.key("steals");
    w.value(s.steals);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("protocol");
  w.begin_object();
  w.key("connections");
  w.value(connections_);
  w.key("malformed_frames");
  w.value(malformed_frames_);
  w.end_object();

  w.key("arena_peak_bytes");
  w.value(static_cast<std::uint64_t>(arena_peak_bytes_));

  w.key("backends");
  w.begin_object();
  for (std::uint8_t b = 0; b < kNumBackends; ++b) {
    const auto& bc = backends_[b];
    w.key(backend_name(static_cast<Backend>(b)));
    w.begin_object();
    w.key("completed");
    w.value(bc.completed);
    w.key("failed");
    w.value(bc.failed);
    w.key("timed_out");
    w.value(bc.timed_out);
    w.key("latency_ms");
    w.begin_object();
    w.key("count");
    w.value(bc.latency.count());
    w.key("p50");
    w.value(bc.latency.percentile_ms(50));
    w.key("p90");
    w.value(bc.latency.percentile_ms(90));
    w.key("p99");
    w.value(bc.latency.percentile_ms(99));
    w.key("max");
    w.value(bc.latency.max_ms());
    w.end_object();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.take();
}

namespace {

void prom_header(std::string& out, const char* name, const char* help,
                 const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void prom_value(std::string& out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::uint64_t>(v)) && v >= 0) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
  out += '\n';
}

void prom_sample(std::string& out, const char* name, const char* help,
                 const char* type, double v) {
  prom_header(out, name, help, type);
  out += name;
  out += ' ';
  prom_value(out, v);
}

void prom_labeled(std::string& out, const char* name, const char* backend,
                  double v) {
  out += name;
  out += "{backend=\"";
  out += backend;
  out += "\"} ";
  prom_value(out, v);
}

/// Emits `name{labels} value` where `labels` is a preformatted label body
/// (e.g. `worker="0",lane="fast"`).
void prom_labeled_raw(std::string& out, const char* name,
                      const std::string& labels, double v) {
  out += name;
  out += '{';
  out += labels;
  out += "} ";
  prom_value(out, v);
}

}  // namespace

std::string Metrics::to_prometheus(
    std::size_t queue_depth, std::size_t queue_capacity,
    std::size_t running_jobs,
    const std::vector<ShardedJobQueue::ShardSnapshot>& shards) const {
  std::string out;
  {
    std::lock_guard lock(mutex_);
    prom_sample(out, "satproofd_connections_total",
                "Client connections accepted.", "counter",
                static_cast<double>(connections_));
    prom_sample(out, "satproofd_malformed_frames_total",
                "Protocol frames rejected as malformed.", "counter",
                static_cast<double>(malformed_frames_));
    prom_sample(out, "satproofd_jobs_accepted_total",
                "Jobs admitted to the queue.", "counter",
                static_cast<double>(accepted_));
    prom_sample(out, "satproofd_jobs_rejected_busy_total",
                "Jobs rejected with BUSY backpressure.", "counter",
                static_cast<double>(rejected_busy_));
    prom_sample(out, "satproofd_jobs_completed_total",
                "Jobs that delivered a verdict.", "counter",
                static_cast<double>(completed_));
    prom_sample(out, "satproofd_jobs_failed_total",
                "Jobs whose verdict was not ok.", "counter",
                static_cast<double>(failed_));
    prom_sample(out, "satproofd_jobs_timed_out_total",
                "Jobs cancelled at their wall-clock deadline.", "counter",
                static_cast<double>(timed_out_));
    prom_sample(out, "satproofd_slow_jobs_total",
                "Jobs exceeding the --slow-job-ms threshold.", "counter",
                static_cast<double>(slow_jobs_));
    prom_sample(out, "satproofd_certified_total",
                "Certificates verified by the trusted kernel post-check.",
                "counter", static_cast<double>(certified_));
    prom_sample(out, "satproofd_certify_failed_total",
                "Certificates REJECTED by the trusted kernel post-check.",
                "counter", static_cast<double>(certify_failed_));
    prom_sample(out, "satproofd_arena_peak_bytes",
                "Largest clause-arena peak observed over completed jobs.",
                "gauge", static_cast<double>(arena_peak_bytes_));
    prom_sample(out, "satproofd_queue_depth", "Jobs waiting in the queue.",
                "gauge", static_cast<double>(queue_depth));
    prom_sample(out, "satproofd_queue_capacity",
                "Configured queue capacity.", "gauge",
                static_cast<double>(queue_capacity));
    prom_sample(out, "satproofd_running_jobs",
                "Jobs currently executing.", "gauge",
                static_cast<double>(running_jobs));

    prom_sample(out, "satproofd_workers",
                "Checker worker threads (one queue shard each).", "gauge",
                static_cast<double>(shards.size()));
    prom_header(out, "satproofd_worker_queue_depth",
                "Jobs waiting in one worker's shard, by priority lane.",
                "gauge");
    for (std::size_t i = 0; i < shards.size(); ++i) {
      const std::string w = std::to_string(i);
      prom_labeled_raw(out, "satproofd_worker_queue_depth",
                       "worker=\"" + w + "\",lane=\"fast\"",
                       static_cast<double>(shards[i].depth_fast));
      prom_labeled_raw(out, "satproofd_worker_queue_depth",
                       "worker=\"" + w + "\",lane=\"bulk\"",
                       static_cast<double>(shards[i].depth_bulk));
    }
    prom_header(out, "satproofd_worker_steals_total",
                "Jobs a worker obtained by stealing from another shard.",
                "counter");
    for (std::size_t i = 0; i < shards.size(); ++i) {
      prom_labeled_raw(out, "satproofd_worker_steals_total",
                       "worker=\"" + std::to_string(i) + "\"",
                       static_cast<double>(shards[i].steals));
    }
    prom_header(out, "satproofd_lane_jobs_enqueued_total",
                "Jobs admitted, by priority lane.", "counter");
    std::uint64_t lane_fast = 0;
    std::uint64_t lane_bulk = 0;
    for (const auto& s : shards) {
      lane_fast += s.enqueued_fast;
      lane_bulk += s.enqueued_bulk;
    }
    prom_labeled_raw(out, "satproofd_lane_jobs_enqueued_total",
                     "lane=\"fast\"", static_cast<double>(lane_fast));
    prom_labeled_raw(out, "satproofd_lane_jobs_enqueued_total",
                     "lane=\"bulk\"", static_cast<double>(lane_bulk));

    prom_header(out, "satproofd_backend_jobs_completed_total",
                "Jobs completed, by checker backend.", "counter");
    for (std::uint8_t b = 0; b < kNumBackends; ++b) {
      prom_labeled(out, "satproofd_backend_jobs_completed_total",
                   backend_name(static_cast<Backend>(b)),
                   static_cast<double>(backends_[b].completed));
    }
    prom_header(out, "satproofd_backend_jobs_failed_total",
                "Jobs with a non-ok verdict, by checker backend.", "counter");
    for (std::uint8_t b = 0; b < kNumBackends; ++b) {
      prom_labeled(out, "satproofd_backend_jobs_failed_total",
                   backend_name(static_cast<Backend>(b)),
                   static_cast<double>(backends_[b].failed));
    }
    prom_header(out, "satproofd_backend_jobs_timed_out_total",
                "Jobs timed out, by checker backend.", "counter");
    for (std::uint8_t b = 0; b < kNumBackends; ++b) {
      prom_labeled(out, "satproofd_backend_jobs_timed_out_total",
                   backend_name(static_cast<Backend>(b)),
                   static_cast<double>(backends_[b].timed_out));
    }
    prom_header(out, "satproofd_backend_latency_p99_ms",
                "Estimated p99 job latency in milliseconds, by backend.",
                "gauge");
    for (std::uint8_t b = 0; b < kNumBackends; ++b) {
      prom_labeled(out, "satproofd_backend_latency_p99_ms",
                   backend_name(static_cast<Backend>(b)),
                   backends_[b].latency.percentile_ms(99));
    }
  }
  // Process-wide checker counters (resolutions, clauses built, ...) are
  // registered in the global registry by run_check.
  out += obs::MetricsRegistry::instance().render_prometheus();
  return out;
}

}  // namespace satproof::service
