file(REMOVE_RECURSE
  "CMakeFiles/satproof_util.dir/mem_tracker.cpp.o"
  "CMakeFiles/satproof_util.dir/mem_tracker.cpp.o.d"
  "CMakeFiles/satproof_util.dir/rng.cpp.o"
  "CMakeFiles/satproof_util.dir/rng.cpp.o.d"
  "CMakeFiles/satproof_util.dir/table.cpp.o"
  "CMakeFiles/satproof_util.dir/table.cpp.o.d"
  "CMakeFiles/satproof_util.dir/temp_file.cpp.o"
  "CMakeFiles/satproof_util.dir/temp_file.cpp.o.d"
  "CMakeFiles/satproof_util.dir/varint.cpp.o"
  "CMakeFiles/satproof_util.dir/varint.cpp.o.d"
  "libsatproof_util.a"
  "libsatproof_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satproof_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
