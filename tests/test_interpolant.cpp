// Tests for proof trimming and McMillan interpolation — the two
// proof-consuming applications built on the DAG.

#include <gtest/gtest.h>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/circuit/tseitin.hpp"
#include "src/encode/pigeonhole.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/proof/interpolant.hpp"
#include "src/proof/trim.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/rng.hpp"

namespace satproof::proof {
namespace {

struct Solved {
  Formula formula;
  trace::MemoryTrace trace;
};

Solved solve_unsat(Formula f) {
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable);
  return {std::move(f), w.take()};
}

// ------------------------------------------------------------------ trim

TEST(Trim, TrimmedTraceChecksAndShrinks) {
  const Solved su = solve_unsat(encode::pigeonhole(6));
  trace::MemoryTraceReader in(su.trace);
  trace::MemoryTraceWriter out;
  const TrimStats stats = trim_trace(in, out);
  EXPECT_LE(stats.derivations_after, stats.derivations_before);
  EXPECT_GT(stats.derivations_after, 0u);

  const trace::MemoryTrace trimmed = out.take();
  trace::MemoryTraceReader r1(trimmed);
  const checker::CheckResult df = checker::check_depth_first(su.formula, r1);
  ASSERT_TRUE(df.ok) << df.error;
  trace::MemoryTraceReader r2(trimmed);
  const checker::CheckResult bf =
      checker::check_breadth_first(su.formula, r2);
  ASSERT_TRUE(bf.ok) << bf.error;

  // After trimming, the depth-first checker builds everything: the trace
  // contains exactly the reachable subgraph.
  EXPECT_EQ(df.stats.clauses_built, df.stats.total_derivations);
  EXPECT_EQ(bf.stats.total_derivations, stats.derivations_after);
}

TEST(Trim, IdempotentOnTrimmedTraces) {
  const Solved su = solve_unsat(encode::pigeonhole(5));
  trace::MemoryTraceReader in(su.trace);
  trace::MemoryTraceWriter once;
  const TrimStats first = trim_trace(in, once);
  const trace::MemoryTrace t1 = once.take();
  trace::MemoryTraceReader in2(t1);
  trace::MemoryTraceWriter twice;
  const TrimStats second = trim_trace(in2, twice);
  EXPECT_EQ(second.derivations_before, first.derivations_after);
  EXPECT_EQ(second.derivations_after, first.derivations_after);
}

TEST(Trim, RejectsSatTrace) {
  Formula f(2);
  f.add_clause({Lit::pos(0), Lit::pos(1)});
  solver::Solver s;
  s.add_formula(f);
  trace::MemoryTraceWriter w;
  s.set_trace_writer(&w);
  ASSERT_EQ(s.solve(), solver::SolveResult::Satisfiable);
  const trace::MemoryTrace t = w.take();
  trace::MemoryTraceReader in(t);
  trace::MemoryTraceWriter out;
  EXPECT_THROW((void)trim_trace(in, out), std::runtime_error);
}

// ----------------------------------------------------------- interpolant

/// Verifies the three defining interpolant properties with the solver.
void verify_interpolant(const Formula& f, const std::vector<bool>& in_a,
                        const Interpolant& itp) {
  std::vector<ClauseId> a_ids, b_ids;
  for (ClauseId id = 0; id < f.num_clauses(); ++id) {
    (in_a[id] ? a_ids : b_ids).push_back(id);
  }

  // A && !I must be UNSAT (A implies I).
  {
    Formula q = f.subformula(a_ids);
    const auto var_of = circuit::tseitin_into(q, itp.netlist, itp.bindings);
    q.add_clause({Lit::neg(var_of[itp.output])});
    solver::Solver s;
    s.add_formula(q);
    EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable)
        << "A does not imply the interpolant";
  }
  // I && B must be UNSAT.
  {
    Formula q = f.subformula(b_ids);
    q.ensure_var(f.num_vars() == 0 ? 0 : f.num_vars() - 1);
    const auto var_of = circuit::tseitin_into(q, itp.netlist, itp.bindings);
    q.add_clause({Lit::pos(var_of[itp.output])});
    solver::Solver s;
    s.add_formula(q);
    EXPECT_EQ(s.solve(), solver::SolveResult::Unsatisfiable)
        << "interpolant does not refute B";
  }
  // Support: every bound input is a genuinely shared variable.
  std::vector<bool> occurs_a(f.num_vars(), false), occurs_b(f.num_vars(), false);
  for (ClauseId id = 0; id < f.num_clauses(); ++id) {
    auto& occ = in_a[id] ? occurs_a : occurs_b;
    for (const Lit lit : f.clause(id)) occ[lit.var()] = true;
  }
  for (const auto& [wire, var] : itp.bindings) {
    EXPECT_TRUE(occurs_a[var] && occurs_b[var]) << "x" << var;
  }
}

Interpolant interpolate(const Solved& su, const std::vector<bool>& in_a) {
  trace::MemoryTraceReader r(su.trace);
  const ProofDag dag = extract_proof(su.formula, r);
  return mcmillan_interpolant(su.formula, dag, in_a);
}

TEST(Interpolant, PigeonholeNaturalSplit) {
  // A: every pigeon sits somewhere; B: no hole holds two pigeons.
  const Formula f = encode::pigeonhole(4);
  std::vector<bool> in_a(f.num_clauses(), false);
  for (ClauseId id = 0; id < 5; ++id) in_a[id] = true;  // 5 pigeons
  const Solved su = solve_unsat(f);
  const Interpolant itp = interpolate(su, in_a);
  EXPECT_FALSE(itp.bindings.empty());
  verify_interpolant(f, in_a, itp);
}

TEST(Interpolant, AllInA) {
  const Formula f = encode::pigeonhole(3);
  const std::vector<bool> in_a(f.num_clauses(), true);
  const Solved su = solve_unsat(f);
  const Interpolant itp = interpolate(su, in_a);
  // With B empty there are no shared variables; the interpolant must be
  // a constant that A implies and that refutes (empty) B: false.
  EXPECT_TRUE(itp.bindings.empty());
  verify_interpolant(f, in_a, itp);
}

TEST(Interpolant, AllInB) {
  const Formula f = encode::pigeonhole(3);
  const std::vector<bool> in_a(f.num_clauses(), false);
  const Solved su = solve_unsat(f);
  const Interpolant itp = interpolate(su, in_a);
  EXPECT_TRUE(itp.bindings.empty());
  verify_interpolant(f, in_a, itp);
}

TEST(Interpolant, PartitionSizeMismatchRejected) {
  const Formula f = encode::pigeonhole(3);
  const Solved su = solve_unsat(f);
  trace::MemoryTraceReader r(su.trace);
  const ProofDag dag = extract_proof(su.formula, r);
  const std::vector<bool> wrong(f.num_clauses() + 1, true);
  EXPECT_THROW((void)mcmillan_interpolant(su.formula, dag, wrong),
               ProofError);
}

/// Property sweep: random splits of random UNSAT formulas all yield
/// verified interpolants.
class InterpolantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterpolantSweep, RandomSplitsVerify) {
  util::Rng rng(GetParam());
  int done = 0;
  for (int round = 0; round < 20 && done < 4; ++round) {
    const unsigned n = 16 + static_cast<unsigned>(rng.next_below(8));
    Formula f = encode::random_ksat(n, static_cast<unsigned>(n * 5.0), 3,
                                    rng.next_u64());
    solver::Solver probe;
    probe.add_formula(f);
    trace::MemoryTraceWriter w;
    probe.set_trace_writer(&w);
    if (probe.solve() != solver::SolveResult::Unsatisfiable) continue;
    ++done;
    const Solved su{std::move(f), w.take()};

    std::vector<bool> in_a(su.formula.num_clauses());
    for (std::size_t i = 0; i < in_a.size(); ++i) in_a[i] = rng.next_bool();
    const Interpolant itp = interpolate(su, in_a);
    verify_interpolant(su.formula, in_a, itp);
  }
  EXPECT_GT(done, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpolantSweep,
                         ::testing::Values(41, 82, 123, 164));

}  // namespace
}  // namespace satproof::proof
