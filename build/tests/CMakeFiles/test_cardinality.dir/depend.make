# Empty dependencies file for test_cardinality.
# This may be replaced when dependencies are built.
