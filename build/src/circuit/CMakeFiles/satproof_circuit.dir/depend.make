# Empty dependencies file for satproof_circuit.
# This may be replaced when dependencies are built.
