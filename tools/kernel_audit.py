#!/usr/bin/env python3
"""CI gate for the trusted kernel's audit budget.

The whole point of satproof-kern is that a skeptical reviewer can read it
end to end: a few hundred lines of plain standard C++, no project
dependencies, no clever memory layer. This script fails CI when the
kernel creeps past that budget — either by growing beyond the line limit
or by gaining an include outside the C++ standard library.

Audited files: src/cert/kernel.hpp, src/cert/kernel.cpp and
tools/kern_main.cpp (everything linked into the satproof-kern binary).

Usage: tools/kernel_audit.py [--repo DIR]
Exit: 0 within budget, 1 violation, 2 usage/missing file.
"""

import argparse
import re
import sys
from pathlib import Path

MAX_NONCOMMENT_LINES = 600

AUDITED_FILES = [
    "src/cert/kernel.hpp",
    "src/cert/kernel.cpp",
    "tools/kern_main.cpp",
]

# The C++ standard library headers the kernel may use (a deliberate
# allowlist, not "anything in angle brackets": <unistd.h> or a vendored
# header must fail review here, not slip through).
STD_HEADERS = {
    "algorithm", "array", "cctype", "cerrno", "charconv", "cstdint",
    "cstdio", "cstdlib", "cstring", "exception", "fstream", "iostream",
    "istream", "iosfwd", "limits", "memory", "optional", "ostream",
    "sstream", "stdexcept", "string", "string_view", "utility", "vector",
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^>"]+)[>"]')


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments (string literals in the kernel never
    contain comment markers, so a lexer-grade pass is not needed)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=Path(__file__).resolve().parent.parent,
                        type=Path, help="repository root (default: auto)")
    args = parser.parse_args()

    total_lines = 0
    violations = []
    for rel in AUDITED_FILES:
        path = args.repo / rel
        if not path.is_file():
            print(f"kernel_audit: missing audited file {rel}", file=sys.stderr)
            return 2
        text = path.read_text(encoding="utf-8")

        stripped = strip_comments(text)
        lines = sum(1 for line in stripped.splitlines() if line.strip())
        total_lines += lines
        print(f"kernel_audit: {rel}: {lines} non-comment lines")

        for lineno, line in enumerate(text.splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            quote, header = m.groups()
            if quote == '"':
                # The kernel's own headers are the only quoted includes
                # allowed — anything else is a project dependency.
                if header not in ("src/cert/kernel.hpp",):
                    violations.append(
                        f"{rel}:{lineno}: project include \"{header}\"")
            elif header not in STD_HEADERS:
                violations.append(
                    f"{rel}:{lineno}: non-standard header <{header}>")

    print(f"kernel_audit: total {total_lines} non-comment lines "
          f"(budget {MAX_NONCOMMENT_LINES})")
    if total_lines > MAX_NONCOMMENT_LINES:
        violations.append(
            f"total non-comment lines {total_lines} exceed the "
            f"{MAX_NONCOMMENT_LINES}-line audit budget")

    if violations:
        for v in violations:
            print(f"kernel_audit: FAIL: {v}", file=sys.stderr)
        return 1
    print("kernel_audit: OK — the kernel is within its audit budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
