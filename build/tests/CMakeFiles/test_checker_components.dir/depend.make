# Empty dependencies file for test_checker_components.
# This may be replaced when dependencies are built.
