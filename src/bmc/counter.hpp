#pragma once

#include <cstdint>

#include "src/bmc/sequential.hpp"

namespace satproof::bmc {

/// A gated up-counter with a forbidden value: the second BMC design of the
/// suite, dual to the rotator in that its bad state *is* reachable — just
/// not early.
///
/// A `width`-bit register starts at zero and increments (mod 2^width) on
/// cycles where the free `enable` input is high. `bad` asserts when the
/// counter equals `bad_value`. Reaching `bad_value` needs exactly
/// `bad_value` enabled cycles, so unroll(k) is satisfiable iff
/// k >= bad_value (for 0 < bad_value < 2^width) — a sharp, provable
/// SAT/UNSAT frontier the tests pin down on both sides.
[[nodiscard]] SequentialCircuit make_counter(unsigned width,
                                             std::uint64_t bad_value);

}  // namespace satproof::bmc
