file(REMOVE_RECURSE
  "libsatproof_cli.a"
)
