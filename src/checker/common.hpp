#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/checker/resolution.hpp"
#include "src/cnf/formula.hpp"
#include "src/trace/events.hpp"
#include "src/util/mem_tracker.hpp"

namespace satproof::checker {

/// Counters shared by both checker implementations; the raw material of the
/// paper's Table 2.
struct CheckStats {
  /// Derivation records in the trace (learned clauses the solver reported).
  std::uint64_t total_derivations = 0;
  /// Learned clauses whose literals were actually constructed. For the
  /// depth-first checker this is the "Num. Cls Built" column (19-90% of the
  /// total in the paper); the breadth-first checker always builds all.
  std::uint64_t clauses_built = 0;
  /// Individual resolution steps performed (including the final
  /// empty-clause derivation).
  std::uint64_t resolutions = 0;
  /// Peak accounted memory: clauses held plus, for the depth-first checker,
  /// the in-memory trace (Section 3.2: "the checker needs to read in the
  /// entire trace file into main memory").
  std::size_t peak_mem_bytes = 0;
  /// Distinct original clauses used by the proof (depth-first only); the
  /// size of the unsatisfiable core of Table 3.
  std::uint64_t core_original_clauses = 0;
};

/// Outcome of a checking run.
struct CheckResult {
  /// True when the trace constitutes a valid resolution proof of
  /// unsatisfiability of the formula.
  bool ok = false;
  /// Diagnostic for the first failed check ("as much information as
  /// possible about the failure to help debug the solver", Section 3.2).
  std::string error;
  CheckStats stats;
  /// Depth-first with collect_core: sorted IDs of the original clauses that
  /// appear as leaves of the resolution proof — an unsatisfiable core.
  std::vector<ClauseId> core;
  /// For traces of UNSAT-under-assumptions runs: the validated derived
  /// clause, whose literals are all negations of assumed literals (the
  /// formula implies it, refuting that assumption subset). Empty for
  /// unconditional unsatisfiability proofs.
  std::vector<Lit> failed_assumption_clause;

  /// Convenience: true iff the check succeeded.
  explicit operator bool() const { return ok; }
};

/// Failure raised internally by checker components; converted into a
/// CheckResult with ok == false at the API boundary.
class CheckFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The final-trail assignment table reconstructed from the trace's Level0
/// and Assumption records (Section 3.1, item 3; assumptions are the
/// incremental-query extension). Implied variables carry an antecedent
/// clause ID; assumption decisions do not.
class Level0Table {
 public:
  /// Prepares a table for `num_vars` variables.
  explicit Level0Table(Var num_vars);

  /// Registers one Level0 (implied assignment) record. Throws CheckFailure
  /// on a repeated or out-of-range variable.
  void add(Var var, bool value, ClauseId antecedent);

  /// Registers one Assumption record: `var` was assumed to take `value`.
  /// If the variable has no trail entry yet, this also becomes its trail
  /// entry (an assumption decision); if it does (the failed assumption is
  /// implied to the *opposite* value before its enqueue), only the
  /// assumed-polarity bookkeeping is added. Throws CheckFailure on a
  /// repeated assumption or out-of-range variable.
  void add_assumption(Var var, bool value);

  [[nodiscard]] bool assigned(Var v) const { return v < entries_.size() && entries_[v].assigned; }
  [[nodiscard]] bool value(Var v) const { return entries_[v].value; }
  [[nodiscard]] ClauseId antecedent(Var v) const { return entries_[v].antecedent; }
  /// True when `v` is assigned with an antecedent (resolvable).
  [[nodiscard]] bool implied(Var v) const {
    return assigned(v) && entries_[v].antecedent != kInvalidClauseId;
  }
  /// Chronological rank of the assignment (0 = first on the trail).
  [[nodiscard]] std::uint32_t order(Var v) const { return entries_[v].order; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Assumption bookkeeping.
  [[nodiscard]] bool has_assumptions() const { return num_assumed_ > 0; }
  [[nodiscard]] bool is_assumed(Var v) const {
    return v < entries_.size() && entries_[v].assumed;
  }
  [[nodiscard]] bool assumed_value(Var v) const {
    return entries_[v].assumed_value;
  }

  /// Value of `lit` under the table: False, True, or Undef if unassigned.
  [[nodiscard]] LBool lit_value(Lit lit) const;

 private:
  struct Entry {
    bool assigned = false;
    bool value = false;
    bool assumed = false;
    bool assumed_value = false;
    ClauseId antecedent = kInvalidClauseId;
    std::uint32_t order = 0;
  };
  std::vector<Entry> entries_;
  std::size_t count_ = 0;
  std::size_t num_assumed_ = 0;
};

/// Validates that `clause` really is the antecedent of `var` under the
/// level-0 assignment: it contains the literal that makes `var` true, and
/// every other literal is false and was assigned strictly earlier. This is
/// the paper's "whether the clause is really the antecedent of the
/// variable" check. Throws CheckFailure with a diagnostic otherwise.
/// `what` names the clause in diagnostics (e.g. "clause 42").
void check_antecedent(const SortedClause& clause, Var var,
                      const Level0Table& table, const std::string& what);

/// Callback that produces the canonical clause for an ID, or throws
/// CheckFailure. The depth-first checker builds on demand; the breadth-first
/// checker looks up its live window.
using ClauseFetcher = std::function<const SortedClause&(ClauseId)>;

/// Derives the trace's final clause, exactly as in the proof of
/// Proposition 3: starting from the final conflicting clause, repeatedly
/// resolve on the *most recently assigned* remaining implied variable
/// using its antecedent, until only unresolvable literals remain. Choosing
/// literals in reverse chronological order guarantees no variable is
/// chosen twice, so the loop performs at most |trail| resolutions.
///
/// Without assumptions the result must be the empty clause (checked here:
/// every final-clause literal must be false and implied). With assumptions
/// the remaining literals are returned for validation against the assumed
/// set (validate_assumption_clause). Throws CheckFailure on any invalid
/// step; increments `stats.resolutions`.
[[nodiscard]] SortedClause derive_final_clause(ClauseId final_id,
                                               const ClauseFetcher& fetch,
                                               const Level0Table& table,
                                               CheckStats& stats);

/// Validates the outcome of derive_final_clause: empty is always fine
/// (unconditional unsatisfiability); otherwise every literal must be the
/// negation of a recorded assumption, making the clause a proof that the
/// formula refutes that assumption subset. Throws CheckFailure otherwise.
void validate_assumption_clause(const SortedClause& clause,
                                const Level0Table& table);

/// Validates the trace header against the formula (the ID contract of
/// Section 3.1). Throws CheckFailure on mismatch.
void check_header(const Formula& f, Var trace_vars, ClauseId trace_original);

}  // namespace satproof::checker
