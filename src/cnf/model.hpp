#pragma once

#include <optional>
#include <vector>

#include "src/cnf/formula.hpp"

namespace satproof {

/// A (possibly partial) assignment: model[v] is the value of variable v.
using Model = std::vector<LBool>;

/// Value of `lit` under `model`; Undef when the variable is unassigned or
/// out of the model's range.
[[nodiscard]] LBool value_of(Lit lit, const Model& model);

/// Linear-time verification of a satisfying assignment.
///
/// The paper's Section 1 observes that the SAT side of solver validation is
/// easy: checking a claimed model is linear in the formula size. This is
/// that check. Returns the ID of the first clause not satisfied by `model`
/// (unassigned literals do not satisfy a clause), or std::nullopt when the
/// model satisfies every clause.
[[nodiscard]] std::optional<ClauseId> first_falsified_clause(
    const Formula& f, const Model& model);

/// True when `model` satisfies every clause of `f`.
[[nodiscard]] bool satisfies(const Formula& f, const Model& model);

}  // namespace satproof
