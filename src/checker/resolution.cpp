#include "src/checker/resolution.hpp"

#include <algorithm>

namespace satproof::checker {

SortedClause canonicalize(std::span<const Lit> lits) {
  SortedClause out(lits.begin(), lits.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool is_tautology(const SortedClause& clause) {
  for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
    if (clause[i].var() == clause[i + 1].var()) return true;
  }
  return false;
}

ResolveResult resolve(const SortedClause& a, const SortedClause& b,
                      SortedClause& out) {
  out.clear();
  ResolveResult res;

  // First find the clashing variable(s). Literal codes sort by variable
  // first, so opposite phases of one variable are adjacent across the two
  // sorted sequences and a single merge pass finds every clash.
  std::size_t i = 0, j = 0;
  Var pivot = kInvalidVar;
  while (i < a.size() && j < b.size()) {
    const Lit la = a[i], lb = b[j];
    if (la.var() == lb.var()) {
      if (la != lb) {
        if (pivot != kInvalidVar && pivot != la.var()) {
          res.status = ResolveStatus::MultiClash;
          return res;
        }
        pivot = la.var();
      }
      ++i;
      ++j;
    } else if (la < lb) {
      ++i;
    } else {
      ++j;
    }
  }
  if (pivot == kInvalidVar) {
    res.status = ResolveStatus::NoClash;
    return res;
  }
  // Each side must contain the pivot in exactly one phase; a clause holding
  // both phases is tautological and resolving "through" it would produce a
  // clause stronger than what is actually implied.
  for (const SortedClause* side : {&a, &b}) {
    int count = 0;
    for (const Lit lit : *side) count += lit.var() == pivot ? 1 : 0;
    if (count != 1) {
      res.status = ResolveStatus::MultiClash;
      return res;
    }
  }

  // Merge, dropping both phases of the pivot.
  out.reserve(a.size() + b.size() - 2);
  i = 0;
  j = 0;
  while (i < a.size() || j < b.size()) {
    Lit next;
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      next = a[i++];
    } else if (i >= a.size() || b[j] < a[i]) {
      next = b[j++];
    } else {  // equal literals
      next = a[i++];
      ++j;
    }
    if (next.var() == pivot) continue;
    out.push_back(next);
  }
  res.status = ResolveStatus::Ok;
  res.pivot = pivot;
  return res;
}

// ChainResolver's methods are defined inline in resolution.hpp: the replay
// hot loop makes one step() call per trace resolution, and keeping the
// kernel visible to its callers removes the per-call overhead that rivals
// the per-literal work on short-chain traces.

}  // namespace satproof::checker
