// Throughput/latency benchmark for satproofd: an in-process server on a
// unix socket, N concurrent clients submitting wait-mode jobs round-robin
// over the solved suite, jobs/sec plus client-observed p50/p99 latency.
//
//   service_throughput [--quick] [--json FILE]
//
// Prints one JSON document (recorded in BENCH_service.json). --quick runs
// the small suite with fewer jobs — the CI-friendly smoke variant; --json
// additionally writes the document to FILE for tools/bench_compare.py.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/suite_runner.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/service/client.hpp"
#include "src/service/server.hpp"
#include "src/trace/binary.hpp"
#include "src/util/json.hpp"
#include "src/util/temp_file.hpp"
#include "src/util/timer.hpp"

namespace satproof {
namespace {

/// Replays an in-memory trace into another writer (here: the binary file
/// writer), so the bench feeds the service the same zero-copy mmap format
/// production clients use.
void pipe_trace(const trace::MemoryTrace& mt, trace::TraceWriter& w) {
  trace::MemoryTraceReader reader(mt);
  w.begin(reader.num_vars(), reader.num_original());
  trace::Record rec;
  while (reader.next(rec)) {
    switch (rec.kind) {
      case trace::RecordKind::Derivation:
        w.derivation(rec.id, rec.sources);
        break;
      case trace::RecordKind::FinalConflict:
        w.final_conflict(rec.id);
        break;
      case trace::RecordKind::Level0:
        w.level0(rec.var, rec.value, rec.antecedent);
        break;
      case trace::RecordKind::Assumption:
        w.assumption(rec.var, rec.value);
        break;
      case trace::RecordKind::End:
        break;
    }
    if (rec.kind == trace::RecordKind::End) break;
  }
  w.end();
}

struct OnDiskInstance {
  std::string name;
  util::TempFile cnf{"svc-bench-cnf"};
  util::TempFile trace{"svc-bench-trace"};
};

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_ms.size())));
  return sorted_ms[std::min(idx == 0 ? 0 : idx - 1, sorted_ms.size() - 1)];
}

struct RunResult {
  bool ok = false;
  int clients = 0;
  int jobs = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

// A failed job must NOT std::exit from inside a worker thread: that skips
// every TempFile destructor on the main thread and strands the on-disk
// CNF/trace/socket files in /tmp. Workers record the failure and bail out
// of their loop; the main thread reports it after joining.
RunResult run_load(const std::string& socket_path,
                   const std::vector<OnDiskInstance>& work, int clients,
                   int jobs_per_client) {
  std::vector<std::vector<double>> latencies_ms(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::string first_error;
  util::Timer wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      service::Client client = service::Client::connect_unix(socket_path);
      for (int j = 0; j < jobs_per_client; ++j) {
        if (failed.load(std::memory_order_relaxed)) return;
        const OnDiskInstance& inst =
            work[static_cast<std::size_t>(c + j) % work.size()];
        util::Timer timer;
        const service::Client::SubmitReply reply = client.submit(
            inst.cnf.path().string(), inst.trace.path().string(),
            service::Backend::kDf, /*wait=*/true);
        if (!reply.transport_ok ||
            reply.status != service::JobStatus::kOk) {
          const std::lock_guard<std::mutex> lock(err_mu);
          if (!failed.exchange(true)) {
            first_error =
                "job failed on " + inst.name + ": " +
                (reply.error.empty() ? reply.verdict : reply.error);
          }
          return;
        }
        latencies_ms[static_cast<std::size_t>(c)].push_back(
            timer.elapsed_seconds() * 1e3);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (failed.load()) {
    std::cerr << "FATAL: " << first_error << "\n";
    return RunResult{};  // ok=false; caller unwinds so RAII cleans up
  }

  RunResult res;
  res.ok = true;
  res.clients = clients;
  res.seconds = wall.elapsed_seconds();
  std::vector<double> all;
  for (const auto& v : latencies_ms) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  res.jobs = static_cast<int>(all.size());
  res.p50_ms = percentile(all, 50.0);
  res.p99_ms = percentile(all, 99.0);
  return res;
}

int run(bool quick, const std::string& json_path) {
  // Solve the suite once, then persist every instance as (DIMACS, binary
  // trace) so the service ingests real files through its streaming path.
  const encode::SuiteScale scale =
      quick ? encode::SuiteScale::Small : encode::SuiteScale::Standard;
  std::vector<bench::SolvedInstance> solved = bench::solve_suite(scale);
  std::vector<OnDiskInstance> work(solved.size());
  for (std::size_t i = 0; i < solved.size(); ++i) {
    work[i].name = solved[i].instance.name;
    dimacs::write_file(work[i].cnf.path().string(),
                       solved[i].instance.formula, work[i].name);
    std::ofstream out(work[i].trace.path(),
                      std::ios::out | std::ios::binary);
    trace::BinaryTraceWriter writer(out);
    pipe_trace(solved[i].trace, writer);
  }

  const std::vector<int> client_counts =
      quick ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 8};
  const int jobs_per_client = quick ? 6 : 16;

  // Client-count sweep on a single worker: the historical baseline shape
  // (pinned to one worker so the series stays comparable across the
  // thread-pool -> sharded-worker-pool rearchitecture).
  std::vector<RunResult> runs;
  {
    util::TempFile socket_file{"svc-bench-sock"};
    service::ServerOptions opts;
    opts.unix_socket_path = socket_file.path().string();
    opts.queue_capacity = 256;  // measure scheduling, not backpressure
    opts.workers = 1;
    service::Server server(opts);
    server.start();

    // One warmup pass so first-touch costs don't land in run #1.
    if (!run_load(opts.unix_socket_path, work, 1, 2).ok) {
      server.drain_and_wait();
      return 1;
    }
    for (const int clients : client_counts) {
      RunResult r =
          run_load(opts.unix_socket_path, work, clients, jobs_per_client);
      if (!r.ok) {
        server.drain_and_wait();
        return 1;
      }
      runs.push_back(r);
    }
    server.drain_and_wait();
  }

  // Worker-count sweep at a fixed client load: the multi-core scaling
  // curve. A fresh server per point so worker pools never share state.
  std::vector<unsigned> worker_counts{1, 2, 4};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(worker_counts.begin(), worker_counts.end(), hw) ==
      worker_counts.end()) {
    worker_counts.push_back(hw);
  }
  const int sweep_clients = quick ? 4 : 8;
  std::vector<std::pair<unsigned, RunResult>> sweep;
  for (const unsigned workers : worker_counts) {
    util::TempFile socket_file{"svc-bench-sock"};
    service::ServerOptions opts;
    opts.unix_socket_path = socket_file.path().string();
    opts.queue_capacity = 256;
    opts.workers = workers;
    service::Server server(opts);
    server.start();
    if (!run_load(opts.unix_socket_path, work, 1, 2).ok) {  // warmup
      server.drain_and_wait();
      return 1;
    }
    RunResult r = run_load(opts.unix_socket_path, work, sweep_clients,
                           jobs_per_client);
    if (!r.ok) {
      server.drain_and_wait();
      return 1;
    }
    sweep.emplace_back(workers, r);
    server.drain_and_wait();
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("service_throughput");
  w.key("quick");
  w.value(quick);
  w.key("suite");
  w.value(quick ? "small" : "standard");
  w.key("backend");
  w.value("df");
  w.key("hardware_threads");
  w.value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("instances");
  w.begin_array();
  for (const auto& inst : work) w.value(inst.name);
  w.end_array();
  w.key("runs");
  w.begin_array();
  for (const RunResult& r : runs) {
    w.begin_object();
    w.key("clients");
    w.value(static_cast<std::int64_t>(r.clients));
    w.key("jobs");
    w.value(static_cast<std::int64_t>(r.jobs));
    w.key("seconds");
    w.value(r.seconds);
    w.key("jobs_per_sec");
    w.value(r.seconds > 0 ? static_cast<double>(r.jobs) / r.seconds : 0.0);
    w.key("p50_ms");
    w.value(r.p50_ms);
    w.key("p99_ms");
    w.value(r.p99_ms);
    w.end_object();
  }
  w.end_array();
  w.key("worker_sweep");
  w.begin_array();
  for (const auto& [workers, r] : sweep) {
    w.begin_object();
    w.key("workers");
    w.value(static_cast<std::int64_t>(workers));
    w.key("clients");
    w.value(static_cast<std::int64_t>(r.clients));
    w.key("jobs");
    w.value(static_cast<std::int64_t>(r.jobs));
    w.key("seconds");
    w.value(r.seconds);
    w.key("jobs_per_sec");
    w.value(r.seconds > 0 ? static_cast<double>(r.jobs) / r.seconds : 0.0);
    w.key("p50_ms");
    w.value(r.p50_ms);
    w.key("p99_ms");
    w.value(r.p99_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string doc = w.take();
  std::cout << doc << "\n";
  if (!json_path.empty()) {
    std::ofstream js(json_path);
    if (!js) {
      std::cerr << "FATAL: cannot open " << json_path << "\n";
      return 1;
    }
    js << doc << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace satproof

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: service_throughput [--quick] [--json FILE]\n";
      return 1;
    }
  }
  return satproof::run(quick, json_path);
}
