// Ablation C: conflict-clause minimization (a post-paper CDCL refinement,
// kept traceable here by recording each literal drop as one extra
// resolution). Measures its effect on learned-clause length, solver
// effort, trace volume (derivations get longer source lists, clauses get
// shorter) and checking time — quantifying that proof logging keeps
// working unchanged under a solver-side improvement the paper did not
// have.

#include <iostream>

#include "src/checker/breadth_first.hpp"
#include "src/encode/suite.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/memory.hpp"
#include "src/util/table.hpp"
#include "src/util/timer.hpp"

int main() {
  using namespace satproof;

  util::Table table({"Instance", "Minimize", "Solve (s)", "Conflicts",
                     "Avg Learned Len", "Dropped Lits", "Check (s)"});

  for (const auto& inst : encode::unsat_suite(encode::SuiteScale::Standard)) {
    for (const bool minimize : {false, true}) {
      solver::SolverOptions opts;
      opts.minimize_learned = minimize;
      solver::Solver s(opts);
      s.add_formula(inst.formula);
      trace::MemoryTraceWriter writer;
      s.set_trace_writer(&writer);
      util::Timer t_solve;
      if (s.solve() != solver::SolveResult::Unsatisfiable) {
        std::cerr << "FATAL: " << inst.name << " not UNSAT\n";
        return 1;
      }
      const double solve_secs = t_solve.elapsed_seconds();
      const auto& st = s.stats();

      const trace::MemoryTrace trace = writer.take();
      trace::MemoryTraceReader reader(trace);
      util::Timer t_check;
      const checker::CheckResult check =
          checker::check_breadth_first(inst.formula, reader);
      const double check_secs = t_check.elapsed_seconds();
      if (!check.ok) {
        std::cerr << "FATAL: check failed on " << inst.name << ": "
                  << check.error << "\n";
        return 1;
      }

      const double avg_len =
          st.learned_clauses == 0
              ? 0.0
              : static_cast<double>(st.learned_literals) /
                    static_cast<double>(st.learned_clauses);
      table.add_row({inst.name, minimize ? "on" : "off",
                     util::format_double(solve_secs, 3),
                     std::to_string(st.conflicts),
                     util::format_double(avg_len, 1),
                     std::to_string(st.minimized_literals),
                     util::format_double(check_secs, 3)});
    }
  }

  std::cout << "Ablation C: conflict-clause minimization on/off\n"
            << "(each dropped literal is one extra recorded resolution, so "
               "proofs stay checkable)\n\n"
            << table.to_string();
  return 0;
}
