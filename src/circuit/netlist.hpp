#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/cnf/types.hpp"

namespace satproof::circuit {

/// Index of a signal in a Netlist. Wires are created in topological order:
/// a gate only references wires created before it.
using Wire = std::uint32_t;
inline constexpr Wire kInvalidWire = std::numeric_limits<Wire>::max();

/// Gate types. Two-input gates use fanins a and b; Not uses a; Mux computes
/// `a ? b : c`.
enum class GateKind : std::uint8_t {
  ConstFalse,
  ConstTrue,
  Input,
  Not,
  And,
  Or,
  Xor,
  Mux,
};

/// One gate; unused fanins are kInvalidWire.
struct Gate {
  GateKind kind = GateKind::Input;
  Wire a = kInvalidWire;
  Wire b = kInvalidWire;
  Wire c = kInvalidWire;
};

class Netlist;

/// Copies every gate of `src` into `dst`, substituting each primary input
/// of `src` by the pre-existing `dst` wire given in `input_map` (indexed by
/// src wire; non-input entries are ignored). Returns the full src-to-dst
/// wire map. The workhorse behind BMC unrolling (one copy per time frame)
/// and combined miters of independently built circuits.
[[nodiscard]] std::vector<Wire> copy_into(Netlist& dst, const Netlist& src,
                                          const std::vector<Wire>& input_map);

/// A combinational gate-level netlist.
///
/// This is the substrate for the equivalence-checking and microprocessor-
/// style benchmark families of the paper's Table 1 (c5315/c7225 miters,
/// longmult-style multipliers): circuits are built structurally, converted
/// to CNF by the Tseitin transform (tseitin.hpp), and compared with miters
/// (miter.hpp). Netlists can also be simulated directly, which the tests
/// use to cross-validate the CNF encoding against ground truth.
class Netlist {
 public:
  /// Creates a primary input.
  Wire add_input();

  /// Returns the shared constant wire for `value` (created on first use).
  Wire constant(bool value);

  Wire make_not(Wire a);
  Wire make_and(Wire a, Wire b);
  Wire make_or(Wire a, Wire b);
  Wire make_xor(Wire a, Wire b);
  /// out = sel ? if_true : if_false
  Wire make_mux(Wire sel, Wire if_true, Wire if_false);

  // Derived conveniences.
  Wire make_nand(Wire a, Wire b) { return make_not(make_and(a, b)); }
  Wire make_nor(Wire a, Wire b) { return make_not(make_or(a, b)); }
  Wire make_xnor(Wire a, Wire b) { return make_not(make_xor(a, b)); }
  Wire make_implies(Wire a, Wire b) { return make_or(make_not(a), b); }

  /// AND / OR over an arbitrary fan-in (balanced tree). Empty input yields
  /// the neutral constant.
  Wire reduce_and(std::span<const Wire> wires);
  Wire reduce_or(std::span<const Wire> wires);

  /// Number of wires (== number of gates, inputs and constants included).
  [[nodiscard]] std::size_t num_wires() const { return gates_.size(); }

  /// Number of primary inputs.
  [[nodiscard]] std::size_t num_inputs() const { return inputs_.size(); }

  /// The primary inputs in creation order.
  [[nodiscard]] const std::vector<Wire>& inputs() const { return inputs_; }

  /// Gate descriptor of `w`.
  [[nodiscard]] const Gate& gate(Wire w) const { return gates_[w]; }

  /// Evaluates the whole netlist under the given input values (one value
  /// per primary input, in creation order). Returns one value per wire.
  [[nodiscard]] std::vector<bool> simulate(
      const std::vector<bool>& input_values) const;

 private:
  Wire add_gate(GateKind kind, Wire a = kInvalidWire, Wire b = kInvalidWire,
                Wire c = kInvalidWire);

  std::vector<Gate> gates_;
  std::vector<Wire> inputs_;
  Wire const_false_ = kInvalidWire;
  Wire const_true_ = kInvalidWire;
};

}  // namespace satproof::circuit
