# Empty compiler generated dependencies file for satproof_solver.
# This may be replaced when dependencies are built.
