#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "src/checker/common.hpp"
#include "src/cnf/types.hpp"

namespace satproof::cert {

/// Sink for LRAT certificate records. The emitter drives one of these;
/// implementations only format and buffer — all proof logic stays in the
/// emitter (order) and the kernel (validity).
///
/// Writers never throw on I/O problems; they latch the stream's failure
/// instead, and ok() reports it so callers can fail the export after the
/// check finished (the check verdict must not depend on sink health).
class LratWriter {
 public:
  virtual ~LratWriter() = default;

  /// One addition step: clause `id` with literals `lits` is claimed
  /// derivable, justified by the hint clause IDs in `hints` (RUP order:
  /// each hint is unit or falsified under the accumulated assignment).
  virtual void add(std::uint64_t id, std::span<const Lit> lits,
                   std::span<const std::uint64_t> hints) = 0;

  /// One deletion step at proof position `at_id` (the most recent addition
  /// ID): the clauses in `ids` have no further uses.
  virtual void del(std::uint64_t at_id,
                   std::span<const std::uint64_t> ids) = 0;

  /// Flushes buffered records to the underlying stream.
  virtual void finish() = 0;

  /// False once the underlying stream reported a write failure.
  [[nodiscard]] virtual bool ok() const = 0;
};

/// Plain-text LRAT ("<id> <lits> 0 <hints> 0" / "<id> d <ids> 0"), the
/// format drat-trim's lrat-check and certified checkers consume.
class TextLratWriter final : public LratWriter {
 public:
  explicit TextLratWriter(std::ostream& out) : out_(&out) {}

  void add(std::uint64_t id, std::span<const Lit> lits,
           std::span<const std::uint64_t> hints) override;
  void del(std::uint64_t at_id, std::span<const std::uint64_t> ids) override;
  void finish() override;
  [[nodiscard]] bool ok() const override { return ok_ && out_->good(); }

 private:
  void maybe_flush();

  std::ostream* out_;
  std::string buf_;
  bool ok_ = true;
};

/// Compact binary GRIT-style variant: each record is one tag byte
/// ('a' = addition, 'd' = deletion) followed by LEB128 varints — the
/// clause ID, the literals (mapped 2*|l| + (l<0), as in binary DRAT),
/// a 0 terminator, then for additions the hint IDs and another 0.
/// Roughly 3-4x smaller than the text form on the differential corpus.
class BinaryLratWriter final : public LratWriter {
 public:
  explicit BinaryLratWriter(std::ostream& out) : out_(&out) {}

  void add(std::uint64_t id, std::span<const Lit> lits,
           std::span<const std::uint64_t> hints) override;
  void del(std::uint64_t at_id, std::span<const std::uint64_t> ids) override;
  void finish() override;
  [[nodiscard]] bool ok() const override { return ok_ && out_->good(); }

 private:
  void put_varint(std::uint64_t v);
  void maybe_flush();

  std::ostream* out_;
  std::string buf_;
  bool ok_ = true;
};

/// Bridges checker replay events to LRAT records.
///
/// The trace's resolution chains replay as left folds: R0 = s0,
/// Ri = resolve(R(i-1), si). Under the RUP assignment that falsifies the
/// derived clause, the sources in *reverse* order are exactly a
/// unit-then-conflict hint sequence: each si is unit on the complement of
/// its pivot, and s0 finally falsifies (si \ {~pi} is a subset of R(i-1),
/// which is a subset of the derived clause plus later pivots — all false
/// by then). So every chain becomes one LRAT addition whose hints are its
/// sources reversed; the final empty-clause derivation becomes the last
/// addition with hints [antecedents reversed, final conflicting clause].
///
/// IDs: LRAT numbers the original clauses 1..num_original in formula
/// order; trace ID i maps to i+1 for originals. Derived clauses take
/// consecutive fresh IDs in *emission* order — the depth-first checker
/// replays its cone in DFS postorder, not trace order, so trace IDs are
/// remapped densely here (LRAT requires strictly increasing addition IDs).
///
/// Deletions (hybrid only — on_released fires at use-count exhaustion)
/// are batched per chain and flushed ahead of the next addition.
///
/// The checkers only support resolution chains whose pivot variables are
/// distinct within a chain in the sense that matters here: a chain that
/// removes the same pivot literal twice would need a *satisfied* hint mid
/// sequence, which the strict kernel rejects. CDCL conflict-analysis
/// chains resolve each trail variable at most once, so solver traces
/// never hit this (see docs/CERTIFICATES.md).
class LratEmitter final : public checker::CertObserver {
 public:
  /// Records to `writer`; `num_original` is the formula's clause count
  /// (trace and LRAT IDs are both anchored to it).
  LratEmitter(LratWriter& writer, ClauseId num_original)
      : writer_(&writer), num_original_(num_original),
        next_id_(num_original + 1) {}

  void on_derived(ClauseId id, std::span<const Lit> lits,
                  std::span<const std::uint32_t> sources) override;
  void on_released(ClauseId id) override;
  void on_final(ClauseId final_id,
                std::span<const ClauseId> antecedents) override;

  /// True once the empty-clause addition has been written (the check
  /// reached a successful unconditional-UNSAT verdict).
  [[nodiscard]] bool finished() const { return finished_; }

  [[nodiscard]] std::uint64_t additions() const { return additions_; }
  [[nodiscard]] std::uint64_t deletions() const { return deletions_; }

 private:
  [[nodiscard]] std::uint64_t map_id(ClauseId trace_id) const;
  void flush_deletes();

  LratWriter* writer_;
  ClauseId num_original_;
  std::uint64_t next_id_;       ///< next fresh LRAT ID
  std::uint64_t last_id_ = 0;   ///< most recently written addition ID
  std::vector<std::uint64_t> derived_map_;  ///< by trace ordinal; 0 = unmapped
  std::vector<std::uint64_t> hints_;            ///< scratch
  std::vector<std::uint64_t> pending_deletes_;  ///< batched del record
  std::uint64_t additions_ = 0;
  std::uint64_t deletions_ = 0;
  bool finished_ = false;
};

}  // namespace satproof::cert
