#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/service/job_queue.hpp"
#include "src/service/metrics.hpp"
#include "src/service/protocol.hpp"
#include "src/util/socket.hpp"
#include "src/util/thread_pool.hpp"

namespace satproof::service {

struct ServerOptions {
  /// Unix-domain socket path ("" = no unix listener). First-class
  /// transport: no TCP stack in the loop, filesystem permissions for
  /// access control.
  std::string unix_socket_path;
  /// Listen on 127.0.0.1 TCP as well (never on other interfaces).
  bool enable_tcp = false;
  std::uint16_t tcp_port = 0;  ///< 0 = ephemeral (see tcp_port())

  unsigned jobs = 0;              ///< checker worker threads (0 = hardware)
  std::size_t queue_capacity = 64;  ///< pending jobs before BUSY
  std::uint32_t default_timeout_ms = 0;  ///< per-job budget; 0 = unlimited
  /// Idle-connection guard: a peer that stalls mid-frame (or goes silent)
  /// is dropped after this long instead of pinning a connection thread
  /// forever. 0 disables.
  std::uint32_t idle_timeout_ms = 30000;
  /// Jobs whose wall time exceeds this dump their span tree to stderr
  /// (one block per slow job) and bump the slow-job counter. 0 disables
  /// per-job span collection entirely.
  std::uint32_t slow_job_ms = 0;
};

/// The satproofd daemon: accepts proof-checking jobs over the framed
/// protocol (src/service/protocol.hpp), streams uploads to temp files,
/// schedules checking runs on a util::ThreadPool behind a bounded
/// JobQueue, and serves live metrics.
///
/// Threading: one listener thread (poll over the listen sockets plus the
/// drain wake pipe), one thread per live connection, and the checker pool.
/// Ingestion never buffers a whole trace in memory — upload chunks go
/// straight to disk, and the checkers then read the file through the mmap
/// ByteSource path.
///
/// Shutdown is a *drain*: request_drain() (or a SIGTERM handler calling
/// notify_drain_from_signal()) stops accepting connections and jobs,
/// lets queued and running jobs finish, delivers their results to waiting
/// clients, then releases serve_forever(). Nothing is killed mid-check.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the listener thread. Throws
  /// std::runtime_error when no transport is configured or a bind fails.
  void start();

  /// Actual TCP port (resolves an ephemeral request); 0 when TCP is off.
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

  /// Async-signal-safe drain trigger for SIGTERM/SIGINT handlers: only
  /// writes one byte to a pipe.
  void notify_drain_from_signal() noexcept { wake_pipe_.notify(); }

  /// Thread-safe drain trigger.
  void request_drain() { wake_pipe_.notify(); }

  /// Blocks until a drain completes (all jobs finished, all connections
  /// closed, listeners down).
  void wait_until_drained();

  /// request_drain() + wait_until_drained().
  void drain_and_wait();

  /// Metrics snapshot (same JSON as the protocol's stats reply).
  [[nodiscard]] std::string metrics_json() const;

  /// The snapshot in Prometheus text exposition format (the protocol's
  /// STATS_PROM reply).
  [[nodiscard]] std::string metrics_prometheus() const;

  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  struct ConnSlot {
    util::Socket sock;
    std::atomic<bool> done{false};
    std::jthread thread;  ///< last member: joins before sock dies
  };

  void listener_loop();
  void connection_main(ConnSlot* slot);
  /// Returns false when the connection must close.
  bool handle_frame(util::Socket& sock, Frame& frame,
                    struct UploadState& upload);
  void run_one_job();
  void reap_finished_connections();
  void finish_drain();

  ServerOptions options_;
  util::Socket unix_listener_;
  util::Socket tcp_listener_;
  std::uint16_t tcp_port_ = 0;
  util::WakePipe wake_pipe_;

  Metrics metrics_;
  JobQueue queue_;
  util::ThreadPool pool_;
  std::atomic<std::size_t> running_jobs_{0};
  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<bool> draining_{false};

  /// Serializes job admission against drain: an admitted job always has
  /// its pool task submitted before the queue closes, so the drain's
  /// wait_idle() covers every ticket and no waiter can be stranded.
  std::mutex schedule_mutex_;

  std::mutex conns_mutex_;
  std::list<std::unique_ptr<ConnSlot>> conns_;

  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  bool started_ = false;
  bool drained_ = false;

  std::jthread listener_thread_;
};

}  // namespace satproof::service
