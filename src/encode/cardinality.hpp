#pragma once

#include <span>

#include "src/cnf/formula.hpp"

namespace satproof::encode {

/// Cardinality-constraint encoders — the building block behind many of the
/// EDA encodings the paper's applications use (track capacity in routing,
/// one-action-per-step in planning, one-hot state invariants).
///
/// The sequential-counter (Sinz) encoding adds auxiliary variables
/// s(i, j) = "at least j of the first i+1 literals are true" with O(n*k)
/// clauses, in contrast to the O(n^k) pairwise form. Auxiliary variables
/// are appended after the formula's current variables.

/// Adds clauses forcing at most `k` of `lits` to be true.
void add_at_most_k(Formula& f, std::span<const Lit> lits, unsigned k);

/// Adds clauses forcing at least `k` of `lits` to be true.
void add_at_least_k(Formula& f, std::span<const Lit> lits, unsigned k);

/// Adds clauses forcing exactly `k` of `lits` to be true.
void add_exactly_k(Formula& f, std::span<const Lit> lits, unsigned k);

/// Pigeonhole with sequential-counter at-most-one constraints instead of
/// the pairwise form of pigeonhole(): the same (unsatisfiable) principle,
/// different clause structure — an encoding-sensitivity instance family.
[[nodiscard]] Formula pigeonhole_sequential(unsigned holes);

}  // namespace satproof::encode
