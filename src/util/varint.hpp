#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace satproof::util {

/// LEB128-style variable-length integer codec.
///
/// The paper (Section 4) observes that its human-readable ASCII trace format
/// costs both disk space and checker parsing time, and estimates a 2-3x
/// compaction from a binary encoding. The binary trace writer implements
/// that suggestion on top of this codec: each value is emitted as 7-bit
/// groups, least significant first, with the high bit of every byte but the
/// last set.
///
/// Decoding is strict: every value has exactly one accepted encoding. A
/// 64-bit value occupies at most 10 bytes (the 10th may only be 0x00 or
/// 0x01), and zero-padded forms such as 0x80 0x00 — which would decode to
/// the same value as a shorter encoding — are rejected. Strictness matters
/// for the checker: accepting redundant encodings would let two
/// byte-different traces decode identically, weakening corruption
/// detection.

/// Appends the varint encoding of `value` to `out`.
void append_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Writes the varint encoding of `value` to `os`.
void write_varint(std::ostream& os, std::uint64_t value);

/// Reads one varint from `is`. Returns std::nullopt on EOF before the first
/// byte; throws std::runtime_error on a truncated, over-long, overflowing
/// or non-canonical encoding.
std::optional<std::uint64_t> read_varint(std::istream& is);

/// Decodes one varint from `[p, end)`, advancing `p` past it. This is the
/// zero-copy fast path used by the binary trace reader: no virtual calls,
/// no stream state, just pointer bumps. Throws std::runtime_error on
/// truncation (`p` hits `end` mid-value), over-long (> 10 bytes),
/// overflowing or non-canonical encodings.
///
/// Defined inline: the trace reader decodes millions of varints per check
/// (every clause ID, source delta and literal goes through here, and the
/// breadth-first checker reads the file three times), so the call must
/// vanish into the parse loop. Most trace fields are source deltas and
/// counts below 128, hence the dedicated one-byte early exit — a single
/// byte without the continuation bit is always canonical.
inline std::uint64_t decode_varint(const std::uint8_t*& p,
                                   const std::uint8_t* end) {
  if (p != end && *p < 0x80) return *p++;
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (p == end) {
      throw std::runtime_error("varint: truncated encoding at end of stream");
    }
    const std::uint8_t byte = *p++;
    if ((byte & 0x80) == 0) {
      // Terminal byte: at shift 63 only bit 0 may be set (anything else
      // overflows uint64), and past the first byte a zero terminator means
      // the previous continuation bit was redundant padding — the same
      // value has a shorter encoding, so reject it as non-canonical.
      if (shift == 63 && (byte >> 1) != 0) {
        throw std::runtime_error("varint: value exceeds 64 bits");
      }
      if (shift > 0 && byte == 0) {
        throw std::runtime_error("varint: over-long encoding");
      }
      return value | static_cast<std::uint64_t>(byte) << shift;
    }
    if (shift == 63) {  // continuation past the 10th byte
      throw std::runtime_error("varint: over-long encoding");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    shift += 7;
  }
}

/// Decodes one varint from `data` starting at `pos`, advancing `pos`.
/// Same strictness as the pointer form.
std::uint64_t decode_varint(const std::vector<std::uint8_t>& data,
                            std::size_t& pos);

/// Number of bytes the varint encoding of `value` occupies.
[[nodiscard]] std::size_t varint_size(std::uint64_t value);

}  // namespace satproof::util
