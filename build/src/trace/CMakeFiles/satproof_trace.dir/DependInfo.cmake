
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/ascii.cpp" "src/trace/CMakeFiles/satproof_trace.dir/ascii.cpp.o" "gcc" "src/trace/CMakeFiles/satproof_trace.dir/ascii.cpp.o.d"
  "/root/repo/src/trace/binary.cpp" "src/trace/CMakeFiles/satproof_trace.dir/binary.cpp.o" "gcc" "src/trace/CMakeFiles/satproof_trace.dir/binary.cpp.o.d"
  "/root/repo/src/trace/drup.cpp" "src/trace/CMakeFiles/satproof_trace.dir/drup.cpp.o" "gcc" "src/trace/CMakeFiles/satproof_trace.dir/drup.cpp.o.d"
  "/root/repo/src/trace/events.cpp" "src/trace/CMakeFiles/satproof_trace.dir/events.cpp.o" "gcc" "src/trace/CMakeFiles/satproof_trace.dir/events.cpp.o.d"
  "/root/repo/src/trace/fault_injector.cpp" "src/trace/CMakeFiles/satproof_trace.dir/fault_injector.cpp.o" "gcc" "src/trace/CMakeFiles/satproof_trace.dir/fault_injector.cpp.o.d"
  "/root/repo/src/trace/memory.cpp" "src/trace/CMakeFiles/satproof_trace.dir/memory.cpp.o" "gcc" "src/trace/CMakeFiles/satproof_trace.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cnf/CMakeFiles/satproof_cnf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/satproof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
