# Empty dependencies file for satproof_simplify.
# This may be replaced when dependencies are built.
