#pragma once

#include "src/checker/common.hpp"

namespace satproof::checker {

/// Options for the depth-first checker.
struct DepthFirstOptions {
  /// Collect the IDs of the original clauses used by the proof (the
  /// unsatisfiable core, "a by-product" per Section 3.2). Costs nothing
  /// extra beyond returning the list.
  bool collect_core = true;

  /// Plan the final conflict's derivation cone at index time and replay it
  /// as a linear sweep, so clauses land in the arena in first-use order
  /// and the replay loop streams it (with the next antecedents
  /// prefetched) instead of re-walking an explicit DFS stack per clause.
  /// The planned traversal is the exact on-demand traversal, so verdicts,
  /// cores and stats are byte-identical either way; `false` keeps the
  /// original lazy build as a regression reference (see
  /// tests/test_layout.cpp).
  bool streaming_replay = true;

  /// When non-null, clause storage borrows this arena instead of growing a
  /// private one (satproofd workers pass their per-worker arena, reset()
  /// between jobs, so chunk memory is reused across checks). Reported
  /// arena statistics are identical either way.
  util::ClauseArena* recycle_arena = nullptr;

  /// When non-null, receives replay-order derivation events (the LRAT
  /// certificate emitter hooks in here). Null — the default — keeps the
  /// replay loop free of observer branches beyond one predictable test per
  /// derivation; verdicts, cores and stats are identical either way.
  CertObserver* observer = nullptr;
};

/// Depth-first proof checking (paper Section 3.2, Fig. 3).
///
/// Reads the *entire* trace into memory, then starts from the final
/// conflicting clause and builds learned clauses recursively, on demand:
/// only the clauses reachable from the final conflict are ever constructed
/// (19-90% of all learned clauses on the paper's benchmarks). Fast — the
/// paper measures roughly 2x faster than breadth-first — but the resident
/// trace plus the memoized clauses make it the memory-hungry variant: the
/// two hardest instances in Table 2 exhaust an 800 MB limit.
///
/// Every step is validated: derivations must reference earlier IDs, each
/// resolution must have exactly one clashing variable, level-0 antecedents
/// must really be antecedents, and the final conflicting clause must be
/// falsified by the level-0 assignment. On failure the result carries a
/// diagnostic naming the offending clause.
///
/// `reader` is consumed from its current position; `f` must be the exact
/// formula the solver solved (same clause order).
[[nodiscard]] CheckResult check_depth_first(const Formula& f,
                                            trace::TraceReader& reader,
                                            const DepthFirstOptions& options = {});

}  // namespace satproof::checker
