#pragma once

#include <span>
#include <vector>

#include "src/cnf/types.hpp"

namespace satproof::checker {

/// A clause in checker-canonical form: literals sorted by code, duplicates
/// removed. Canonical form makes resolution a linear merge and makes
/// clause equality a vector comparison.
using SortedClause = std::vector<Lit>;

/// Canonicalizes an arbitrary literal sequence.
[[nodiscard]] SortedClause canonicalize(std::span<const Lit> lits);

/// True when the (sorted) clause contains some variable in both phases.
/// Tautological clauses are permanently satisfied and must not appear as
/// resolution sources; the checkers reject traces that reference one.
[[nodiscard]] bool is_tautology(const SortedClause& clause);

/// Outcome of attempting to resolve two clauses.
enum class ResolveStatus : std::uint8_t {
  Ok,          ///< exactly one clashing variable; resolvent produced
  NoClash,     ///< no variable occurs in both clauses with opposite phases
  MultiClash,  ///< more than one clashing variable (resolvent tautological)
};

/// Result of resolve().
struct ResolveResult {
  ResolveStatus status = ResolveStatus::NoClash;
  Var pivot = kInvalidVar;  ///< the clashing variable when status == Ok
};

/// Resolves two canonical clauses.
///
/// This is the checker's trusted kernel. Following Section 2.1 of the
/// paper, two clauses may be resolved only when *exactly one* variable
/// appears in both with different phases; the resolvent is the disjunction
/// of the remaining literals. Zero clashing variables means the trace asked
/// for a resolution that is not one; two or more means the resolvent would
/// be tautological and the inference chain is broken. Both are reported
/// rather than silently accepted — the checker must not be as trusting as
/// the solver it validates.
///
/// `out` receives the canonical resolvent when the status is Ok; otherwise
/// it is left empty. `a`, `b` and `out` must be distinct objects.
ResolveResult resolve(const SortedClause& a, const SortedClause& b,
                      SortedClause& out);

/// Incremental resolution over a chain of clauses.
///
/// Replaying a derivation left-folds resolution over its sources; doing
/// that with sorted merges costs O(steps * clause length), which on
/// circuit-style instances with long learned clauses makes the checker as
/// slow as the solver — the opposite of the paper's measurement that
/// checking is always much cheaper than solving. ChainResolver keeps the
/// running clause as a literal set with per-literal presence stamps (the
/// same trick conflict analysis uses inside the solver), so each step costs
/// O(|next source|) and a whole derivation costs O(total source length).
///
/// The validity checks are identical to resolve(): each step must clash on
/// exactly one variable.
///
/// One ChainResolver should be reused across derivations; its stamp arrays
/// grow to 2 * num_vars once and are epoch-invalidated, not cleared.
class ChainResolver {
 public:
  /// Begins a chain with `first` as the running clause. `first` must be
  /// duplicate-free (canonical clauses are).
  void start(std::span<const Lit> first);

  /// Resolves the running clause with `next`. On MultiClash/NoClash the
  /// running clause is left unspecified and the chain must be restarted.
  ResolveResult step(std::span<const Lit> next);

  /// Current literals of the running clause, in unspecified order,
  /// duplicate-free. Valid until the next start()/step().
  [[nodiscard]] std::span<const Lit> lits() const {
    return {lits_.data(), lits_.size()};
  }

  /// Mutable access to the running clause's literals, for callers that
  /// sort in place and then copy the result elsewhere (e.g. into a clause
  /// arena) without the allocation take() implies. Reordering is safe:
  /// start() rebuilds the position index from scratch. The span is
  /// invalidated — and its contents are unspecified — after the next
  /// start()/step()/take().
  [[nodiscard]] std::span<Lit> lits_mutable() {
    return {lits_.data(), lits_.size()};
  }

  /// Moves the running clause out (unsorted, duplicate-free).
  [[nodiscard]] std::vector<Lit> take();

 private:
  [[nodiscard]] bool present(Lit lit) const {
    const std::uint32_t c = lit.code();
    return c < stamp_.size() && stamp_[c] == epoch_;
  }
  void insert(Lit lit);
  void erase(Lit lit);
  void grow_to(Lit lit);

  std::vector<Lit> lits_;
  std::vector<std::uint64_t> stamp_;  // per literal code: epoch when present
  std::vector<std::uint32_t> pos_;    // per literal code: index in lits_
  std::uint64_t epoch_ = 0;
};

}  // namespace satproof::checker
