#include "src/service/server.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "src/obs/trace.hpp"

namespace satproof::service {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

/// Per-connection upload in progress: the job header plus the temp files
/// the CNF and trace chunks stream into. Chunks hit disk immediately — the
/// server never holds more of an upload in memory than one frame.
struct UploadState {
  bool active = false;
  SubmitHeader header;
  std::uint64_t ingest_start_us = 0;
  std::optional<util::TempFile> cnf_file;
  std::optional<util::TempFile> trace_file;
  std::ofstream cnf_out;
  std::ofstream trace_out;

  void begin(const SubmitHeader& h) {
    header = h;
    ingest_start_us = obs::now_us();
    cnf_file.emplace("svc-cnf");
    trace_file.emplace("svc-trace");
    cnf_out.open(cnf_file->path(), std::ios::out | std::ios::binary);
    trace_out.open(trace_file->path(), std::ios::out | std::ios::binary);
    active = true;
  }

  void reset() {
    active = false;
    cnf_out.close();
    trace_out.close();
    cnf_file.reset();
    trace_file.reset();
  }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity == 0 ? 1 : options_.queue_capacity),
      pool_(options_.jobs) {}

Server::~Server() {
  bool need_drain = false;
  {
    std::lock_guard lock(state_mutex_);
    need_drain = started_ && !drained_;
  }
  if (need_drain) drain_and_wait();
}

void Server::start() {
  if (options_.unix_socket_path.empty() && !options_.enable_tcp) {
    throw std::runtime_error(
        "server needs at least one transport (unix socket or tcp)");
  }
  if (!options_.unix_socket_path.empty()) {
    unix_listener_ = util::listen_unix(options_.unix_socket_path);
  }
  if (options_.enable_tcp) {
    tcp_listener_ = util::listen_tcp_localhost(options_.tcp_port);
    tcp_port_ = util::local_port(tcp_listener_);
  }
  {
    std::lock_guard lock(state_mutex_);
    started_ = true;
  }
  listener_thread_ = std::jthread([this] { listener_loop(); });
}

void Server::wait_until_drained() {
  std::unique_lock lock(state_mutex_);
  if (!started_) return;
  state_cv_.wait(lock, [this] { return drained_; });
}

void Server::drain_and_wait() {
  request_drain();
  wait_until_drained();
}

std::string Server::metrics_json() const {
  return metrics_.to_json(queue_.depth(), queue_.capacity(),
                          running_jobs_.load());
}

std::string Server::metrics_prometheus() const {
  return metrics_.to_prometheus(queue_.depth(), queue_.capacity(),
                                running_jobs_.load());
}

void Server::listener_loop() {
  for (;;) {
    const int fds[3] = {unix_listener_.valid() ? unix_listener_.fd() : -1,
                        tcp_listener_.valid() ? tcp_listener_.fd() : -1,
                        wake_pipe_.read_fd};
    const unsigned mask = util::poll_readable(fds, -1);
    if ((mask & 4u) != 0) break;  // drain requested
    for (int i = 0; i < 2; ++i) {
      if ((mask & (1u << i)) == 0) continue;
      util::Socket& listener = i == 0 ? unix_listener_ : tcp_listener_;
      util::Socket conn = util::accept_connection(listener);
      if (!conn.valid()) continue;
      if (options_.idle_timeout_ms > 0) {
        conn.set_recv_timeout_ms(options_.idle_timeout_ms);
      }
      reap_finished_connections();
      auto slot = std::make_unique<ConnSlot>();
      slot->sock = std::move(conn);
      ConnSlot* raw = slot.get();
      {
        std::lock_guard lock(conns_mutex_);
        conns_.push_back(std::move(slot));
      }
      raw->thread = std::jthread([this, raw] { connection_main(raw); });
    }
  }
  finish_drain();
}

void Server::finish_drain() {
  wake_pipe_.drain();
  draining_.store(true);
  unix_listener_.close();
  tcp_listener_.close();
  if (!options_.unix_socket_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(options_.unix_socket_path, ec);
  }

  // Close admissions, then let every admitted job finish. The shared
  // schedule mutex guarantees each admitted job already has its pool task
  // submitted, so wait_idle() covers every outstanding ticket.
  {
    std::lock_guard lock(schedule_mutex_);
    queue_.close();
  }
  pool_.wait_idle();

  // Wake connection threads blocked in recv; their write sides stay open
  // so a final result frame still goes out.
  {
    std::lock_guard lock(conns_mutex_);
    for (auto& slot : conns_) {
      if (!slot->done.load()) slot->sock.shutdown_read();
    }
  }
  // Join outside the lock: a connection's final close needs conns_mutex_.
  std::list<std::unique_ptr<ConnSlot>> taken;
  {
    std::lock_guard lock(conns_mutex_);
    taken.swap(conns_);
  }
  taken.clear();  // jthread destructors join

  {
    std::lock_guard lock(state_mutex_);
    drained_ = true;
  }
  state_cv_.notify_all();
}

void Server::reap_finished_connections() {
  std::list<std::unique_ptr<ConnSlot>> dead;
  {
    std::lock_guard lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load()) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  dead.clear();  // joins finished threads outside the lock
}

void Server::connection_main(ConnSlot* slot) {
  metrics_.on_connection();
  UploadState upload;
  for (;;) {
    Frame frame;
    const ReadStatus st = read_frame(slot->sock, frame);
    if (st == ReadStatus::kClosed) break;  // orderly close
    if (st == ReadStatus::kTruncated) {
      // Mid-frame disconnect or stalled peer: count it, close quietly —
      // there is no guarantee the peer can still read an error frame.
      metrics_.on_malformed_frame();
      break;
    }
    if (st == ReadStatus::kOversized) {
      metrics_.on_malformed_frame();
      write_frame(slot->sock, FrameTag::kError,
                  encode_error(ErrorCode::kOversizedFrame,
                               "declared frame length exceeds the cap"));
      break;
    }
    if (!handle_frame(slot->sock, frame, upload)) break;
  }
  {
    std::lock_guard lock(conns_mutex_);
    slot->sock.close();
  }
  slot->done.store(true);
}

bool Server::handle_frame(util::Socket& sock, Frame& frame,
                          UploadState& upload) {
  const auto protocol_error = [&](ErrorCode code, std::string_view msg) {
    metrics_.on_malformed_frame();
    write_frame(sock, FrameTag::kError, encode_error(code, msg));
    return false;
  };

  switch (frame.tag) {
    case FrameTag::kSubmit: {
      if (upload.active) {
        return protocol_error(ErrorCode::kProtocolViolation,
                              "SUBMIT while an upload is in progress");
      }
      SubmitHeader header;
      if (!decode_submit_header(frame.payload, header)) {
        return protocol_error(ErrorCode::kMalformedFrame,
                              "SUBMIT payload is not a submit header");
      }
      if (header.backend >= kNumBackends) {
        return protocol_error(ErrorCode::kBadRequest,
                              "unknown backend id " +
                                  std::to_string(header.backend));
      }
      upload.begin(header);
      return true;
    }

    case FrameTag::kCnfData:
    case FrameTag::kTraceData: {
      if (!upload.active) {
        return protocol_error(ErrorCode::kProtocolViolation,
                              "data chunk outside an upload");
      }
      std::ofstream& out = frame.tag == FrameTag::kCnfData ? upload.cnf_out
                                                           : upload.trace_out;
      if (!frame.payload.empty()) {
        out.write(reinterpret_cast<const char*>(frame.payload.data()),
                  static_cast<std::streamsize>(frame.payload.size()));
      }
      return true;
    }

    case FrameTag::kSubmitEnd: {
      if (!upload.active) {
        return protocol_error(ErrorCode::kProtocolViolation,
                              "SUBMIT_END without a submit");
      }
      upload.cnf_out.close();
      upload.trace_out.close();

      JobRequest request;
      request.id = next_job_id_.fetch_add(1);
      request.backend = static_cast<Backend>(upload.header.backend);
      request.jobs = upload.header.jobs;
      request.timeout_ms = upload.header.timeout_ms != 0
                               ? upload.header.timeout_ms
                               : options_.default_timeout_ms;
      request.cnf_file = std::move(*upload.cnf_file);
      request.trace_file = std::move(*upload.trace_file);
      request.enqueued_at = Clock::now();
      request.ingest_us = obs::now_us() - upload.ingest_start_us;
      obs::emit("ingest", upload.ingest_start_us, request.ingest_us);
      const std::uint64_t job_id = request.id;
      const bool wait = (upload.header.flags & kSubmitFlagWait) != 0;
      upload.reset();

      std::shared_ptr<JobTicket> ticket;
      JobQueue::EnqueueResult res;
      {
        std::lock_guard lock(schedule_mutex_);
        res = queue_.try_enqueue(std::move(request), ticket);
        if (res == JobQueue::EnqueueResult::kAccepted) {
          pool_.submit([this] { run_one_job(); });
        }
      }

      if (res == JobQueue::EnqueueResult::kClosed) {
        write_frame(sock, FrameTag::kError,
                    encode_error(ErrorCode::kDraining,
                                 "server is draining; job refused"));
        return false;
      }
      if (res == JobQueue::EnqueueResult::kFull) {
        metrics_.on_rejected_busy();
        std::vector<std::uint8_t> payload;
        append_u32le(payload, static_cast<std::uint32_t>(queue_.capacity()));
        write_frame(sock, FrameTag::kBusy, payload);
        return true;  // connection stays usable
      }

      metrics_.on_accepted();
      std::vector<std::uint8_t> payload;
      append_u64le(payload, job_id);
      if (!write_frame(sock, FrameTag::kAccepted, payload)) return false;
      if (wait) {
        ticket->wait();
        const JobStatus status = ticket->timed_out ? JobStatus::kTimeout
                                 : ticket->outcome.ok
                                     ? JobStatus::kOk
                                     : JobStatus::kCheckFailed;
        obs::Span respond_span("respond");
        const std::vector<std::uint8_t> result = encode_result(
            status, job_id, verdict_line(ticket->outcome),
            outcome_json(ticket->outcome));
        if (!write_frame(sock, FrameTag::kResult, result)) return false;
      }
      return true;
    }

    case FrameTag::kStats: {
      if (upload.active) {
        return protocol_error(ErrorCode::kProtocolViolation,
                              "STATS during an upload");
      }
      return write_frame(sock, FrameTag::kStatsJson, metrics_json());
    }

    case FrameTag::kStatsProm: {
      if (upload.active) {
        return protocol_error(ErrorCode::kProtocolViolation,
                              "STATS_PROM during an upload");
      }
      return write_frame(sock, FrameTag::kStatsPromText,
                         metrics_prometheus());
    }

    default:
      return protocol_error(ErrorCode::kUnknownTag,
                            "unknown frame tag " +
                                std::to_string(static_cast<unsigned>(
                                    static_cast<std::uint8_t>(frame.tag))));
  }
}

void Server::run_one_job() {
  auto item = queue_.try_pop();
  if (!item) return;
  JobRequest request = std::move(item->first);
  std::shared_ptr<JobTicket> ticket = std::move(item->second);

  running_jobs_.fetch_add(1);
  const auto start = Clock::now();
  const bool has_deadline = request.timeout_ms > 0;
  const auto deadline =
      request.enqueued_at + std::chrono::milliseconds(request.timeout_ms);

  // Per-job span profile. Only collected when --slow-job-ms is set; the
  // collector is thread-local, so spans from the parallel backend's pool
  // threads land in the global trace sink (if any) but not in this tree.
  const bool profile = options_.slow_job_ms > 0;
  obs::SpanTreeCollector collector;
  if (profile) {
    obs::set_thread_collector(&collector);
    if (request.ingest_us > 0) {
      collector.add_leaf("ingest", 0, request.ingest_us);
    }
    const auto wait_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            start - request.enqueued_at)
            .count());
    collector.add_leaf("queue_wait", obs::now_us() - wait_us, wait_us);
  }

  JobOutcome outcome;
  bool timed_out = false;
  if (has_deadline && start >= deadline) {
    // Expired while queued: fail fast without burning a checker run.
    outcome.backend = request.backend;
    outcome.ok = false;
    outcome.error = "job timed out waiting in the queue";
    timed_out = true;
  } else {
    obs::Span run_span("run");
    outcome = run_check(request.cnf_file.path().string(),
                        request.trace_file.path().string(), request.backend,
                        request.jobs);
    run_span.finish();
    if (has_deadline && Clock::now() > deadline) {
      // Soft timeout: checking is not preemptible, so an overlong job is
      // reported as timed out after the fact (docs/SERVICE.md).
      timed_out = true;
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  if (profile) {
    obs::set_thread_collector(nullptr);
    if (seconds * 1e3 > static_cast<double>(options_.slow_job_ms)) {
      metrics_.on_slow_job();
      // One buffered write so concurrent workers' dumps don't interleave.
      std::string dump = "SLOW-JOB: id=" + std::to_string(request.id) +
                         " backend=" + backend_name(request.backend) +
                         " wall_ms=" + std::to_string(seconds * 1e3) +
                         " threshold_ms=" +
                         std::to_string(options_.slow_job_ms) + "\n" +
                         collector.render();
      std::fputs(dump.c_str(), stderr);
    }
  }

  if (timed_out) {
    metrics_.on_timeout(request.backend);
  } else {
    metrics_.on_completed(request.backend, seconds, outcome.ok,
                          outcome.stats.arena_peak_bytes);
  }
  running_jobs_.fetch_sub(1);
  ticket->complete(std::move(outcome), timed_out);
}

}  // namespace satproof::service
