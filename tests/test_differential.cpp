// Differential fuzzing across every checker backend: the same solver run
// is validated by depth-first, breadth-first, hybrid, parallel, DRUP and
// window-shifting checking, and all six must agree — same verdict on
// every instance, and
// (where a backend extracts one) the same unsat core. Instances are random
// 3-SAT at clause/variable ratios straddling the phase transition (~4.27),
// where both SAT and UNSAT outcomes occur and proofs are nontrivial.
//
// 500 seeded instances split into 10 shards so ctest can run them in
// parallel and a failure names its shard/seed.

#include <gtest/gtest.h>

#include <sstream>

#include "src/checker/breadth_first.hpp"
#include "src/checker/depth_first.hpp"
#include "src/checker/drup.hpp"
#include "src/checker/hybrid.hpp"
#include "src/checker/parallel.hpp"
#include "src/checker/window.hpp"
#include "src/cnf/model.hpp"
#include "src/encode/random_ksat.hpp"
#include "src/solver/solver.hpp"
#include "src/trace/drup.hpp"
#include "src/trace/memory.hpp"

namespace satproof {
namespace {

constexpr int kInstancesPerShard = 50;  // x 10 shards = 500 instances

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, AllBackendsAgreeOnVerdictAndCore) {
  const int shard = GetParam();
  int unsat_seen = 0;
  for (int i = 0; i < kInstancesPerShard; ++i) {
    const std::uint64_t seed =
        1000 + static_cast<std::uint64_t>(shard) * kInstancesPerShard + i;
    // n in [12, 25], ratio in [3.8, 5.0] around the 3-SAT phase transition.
    const unsigned n = 12 + static_cast<unsigned>(seed % 14);
    const double ratio = 3.8 + 0.15 * static_cast<double>(i % 9);
    const unsigned m = static_cast<unsigned>(n * ratio);
    const Formula f = encode::random_ksat(n, m, 3, seed);

    solver::Solver s;
    s.add_formula(f);
    trace::MemoryTraceWriter trace_writer;
    s.set_trace_writer(&trace_writer);
    std::ostringstream drup_text;
    trace::DrupWriter drup_writer(drup_text);
    s.set_drup_writer(&drup_writer);
    const solver::SolveResult solved = s.solve();
    const trace::MemoryTrace t = trace_writer.take();
    SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
                 " m=" + std::to_string(m));

    if (solved == solver::SolveResult::Satisfiable) {
      // The model must verify, and no backend may claim an unsat proof
      // from a SAT run's trace.
      EXPECT_TRUE(satisfies(f, s.model()));
      trace::MemoryTraceReader r(t);
      EXPECT_FALSE(checker::check_depth_first(f, r).ok);
      trace::MemoryTraceReader r2(t);
      EXPECT_FALSE(checker::check_parallel(f, r2).ok);
      continue;
    }
    ASSERT_EQ(solved, solver::SolveResult::Unsatisfiable);
    ++unsat_seen;

    trace::MemoryTraceReader r1(t);
    const checker::CheckResult df = checker::check_depth_first(f, r1);
    trace::MemoryTraceReader r2(t);
    const checker::CheckResult bf = checker::check_breadth_first(f, r2);
    trace::MemoryTraceReader r3(t);
    const checker::CheckResult hy = checker::check_hybrid(f, r3);
    trace::MemoryTraceReader r4(t);
    checker::ParallelOptions popts;
    popts.jobs = 1 + static_cast<unsigned>(i % 4);  // rotate 1..4 workers
    const checker::CheckResult par = checker::check_parallel(f, r4, popts);
    std::istringstream drup_in(drup_text.str());
    const checker::DrupCheckResult dr = checker::check_drup(f, drup_in);

    EXPECT_TRUE(df.ok) << df.error;
    EXPECT_TRUE(bf.ok) << bf.error;
    EXPECT_TRUE(hy.ok) << hy.error;
    EXPECT_TRUE(par.ok) << par.error;
    EXPECT_TRUE(dr.ok) << dr.error;

    // Stats agreement between the trace-replaying backends.
    EXPECT_EQ(df.stats.total_derivations, bf.stats.total_derivations);
    EXPECT_EQ(df.stats.total_derivations, par.stats.total_derivations);

    // Core agreement for the backends that extract one.
    ASSERT_FALSE(df.core.empty());
    EXPECT_EQ(par.core, df.core);
    EXPECT_EQ(par.stats.resolutions, df.stats.resolutions);
    EXPECT_EQ(par.stats.clauses_built, df.stats.clauses_built);

    // The breadth-first checker's whole point is bounded memory: its
    // streaming clause window must never exceed the depth-first checker's
    // whole-trace-plus-memoized-clauses footprint.
    EXPECT_LE(bf.stats.peak_mem_bytes, df.stats.peak_mem_bytes);

    // Window backend across budgets. A roomy budget must reproduce the
    // depth-first verdict, core and replay stats byte for byte. Tighter
    // budgets may legitimately refuse (the resident index alone can
    // exceed them) — but then the failure must be the graceful budget
    // diagnostic, never a crash or a wrong verdict.
    bool strict = true;  // 1 MiB always fits these instances
    for (const std::size_t limit :
         {std::size_t{1} << 20, std::size_t{16} << 10, std::size_t{2} << 10}) {
      trace::MemoryTraceReader rw(t);
      checker::WindowOptions wopts;
      wopts.mem_limit_bytes = limit;
      wopts.collect_core = true;
      const checker::CheckResult wn = checker::check_window(f, rw, wopts);
      SCOPED_TRACE("window mem_limit=" + std::to_string(limit));
      if (strict) EXPECT_TRUE(wn.ok) << wn.error;
      if (wn.ok) {
        EXPECT_EQ(wn.core, df.core);
        EXPECT_EQ(wn.stats.resolutions, df.stats.resolutions);
        EXPECT_EQ(wn.stats.clauses_built, df.stats.clauses_built);
        EXPECT_EQ(wn.stats.core_original_clauses,
                  df.stats.core_original_clauses);
        EXPECT_EQ(wn.stats.total_derivations, df.stats.total_derivations);
      } else {
        EXPECT_NE(wn.error.find("mem limit"), std::string::npos) << wn.error;
      }
      strict = false;
    }
  }
  // The ratio sweep straddles the phase transition, so a healthy fraction
  // of every shard must actually exercise the proof path.
  EXPECT_GE(unsat_seen, kInstancesPerShard / 5);
}

INSTANTIATE_TEST_SUITE_P(Shards, DifferentialFuzz,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace satproof
